"""Unit tests for the VIProf runtime profiler (extended daemon)."""

import pytest

from repro.errors import ProfilerError
from repro.oprofile.kmodule import OprofileKernelModule
from repro.oprofile.opcontrol import EventSpec, OprofileConfig
from repro.os.binary import standard_libraries
from repro.os.kernel import Kernel
from repro.os.loader import ProgramLoader
from repro.profiling.model import RawSample
from repro.viprof.runtime_profiler import ViprofRuntimeProfiler


def config():
    return OprofileConfig(events=(EventSpec("GLOBAL_POWER_EVENTS", 90_000),))


@pytest.fixture
def rig(tmp_path):
    kernel = Kernel()
    proc = kernel.spawn("JikesRVM")
    loader = ProgramLoader(proc.address_space)
    libc_vma = loader.load_library(standard_libraries()[0])
    heap_vma = loader.map_anonymous(0x200000)
    km = OprofileKernelModule(config())
    rp = ViprofRuntimeProfiler(kernel, km, config(), tmp_path / "samples")
    return kernel, proc, libc_vma, heap_vma, km, rp


def raw(pc, task_id, kernel_mode=False):
    return RawSample(
        pc=pc, event_name="GLOBAL_POWER_EVENTS", task_id=task_id,
        kernel_mode=kernel_mode, cycle=0,
    )


class TestRegistration:
    def test_register_and_lookup(self, rig):
        _, proc, _, heap_vma, _, rp = rig
        reg = rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))
        assert rp.registration_for(proc.pid) is reg
        assert reg.covers(heap_vma.start)
        assert not reg.covers(heap_vma.end)

    def test_bad_bounds_rejected(self, rig):
        _, proc, *_, rp = rig
        with pytest.raises(ProfilerError, match="bad heap bounds"):
            rp.register_vm(proc.pid, (100, 100))

    def test_double_registration_rejected(self, rig):
        _, proc, _, heap_vma, _, rp = rig
        rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))
        with pytest.raises(ProfilerError, match="already registered"):
            rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))

    def test_epoch_source_installed_on_kmodule(self, rig):
        _, proc, _, heap_vma, km, rp = rig
        src = lambda: 7
        rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end), src)
        assert km.epoch_source is src


class TestClassification:
    def test_heap_sample_classified_jit(self, rig):
        _, proc, _, heap_vma, _, rp = rig
        rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))
        assert rp.classify(raw(heap_vma.start + 0x40, proc.pid)) == rp.JIT

    def test_unregistered_task_still_anon(self, rig):
        kernel, proc, _, heap_vma, _, rp = rig
        rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))
        other = kernel.spawn("other")
        assert rp.classify(raw(heap_vma.start + 0x40, other.pid)) == rp.ANON

    def test_outside_heap_falls_through(self, rig):
        _, proc, libc_vma, heap_vma, _, rp = rig
        rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))
        assert rp.classify(raw(libc_vma.start + 0x1000, proc.pid)) == rp.FILE

    def test_kernel_sample_never_jit(self, rig):
        kernel, proc, _, heap_vma, _, rp = rig
        rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))
        s = raw(kernel.kernel_pc("schedule"), proc.pid, kernel_mode=True)
        assert rp.classify(s) == rp.KERNEL

    def test_jit_path_cheaper_than_anon_path(self, rig):
        """The paper's replacement claim: classifying a JIT sample must cost
        less than the anonymous-logging path it replaces."""
        *_, rp = rig
        jit_cost = rp.costs.jit_classify
        anon_cost = rp.costs.resolve + rp.costs.anon_extra
        assert jit_cost < anon_cost

    def test_jit_samples_counted_in_stats(self, rig):
        _, proc, _, heap_vma, km, rp = rig
        rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))
        rp.start()
        km.buffer.append(raw(heap_vma.start + 0x80, proc.pid))
        rp.wakeup()
        assert rp.stats.jit_samples == 1
        assert rp.stats.anon_samples == 0
        rp.stop()

    def _mixed_stream(self, rig, n=30):
        kernel, proc, libc_vma, heap_vma, *_ = rig
        other = kernel.spawn("other")
        kpc = kernel.kernel_pc("schedule")
        out = []
        for i in range(n):
            which = i % 5
            if which == 0:
                out.append(raw(heap_vma.start + 8 * i, proc.pid))
            elif which == 1:
                out.append(raw(libc_vma.start + 16 * i, proc.pid))
            elif which == 2:
                out.append(raw(kpc, proc.pid, kernel_mode=True))
            elif which == 3:
                out.append(raw(heap_vma.start + 8 * i, other.pid))
            else:
                out.append(raw(heap_vma.start - 1, proc.pid))
        return out

    def test_classify_chunk_agrees_with_classify(self, rig):
        _, proc, _, heap_vma, _, rp = rig
        rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))
        stream = self._mixed_stream(rig)
        assert rp.classify_chunk(stream) == [
            rp.classify(s) for s in stream
        ]

    def test_classify_chunk_without_fast_path_delegates(self, rig, tmp_path):
        kernel, proc, _, heap_vma, km, _ = rig
        rp = ViprofRuntimeProfiler(
            kernel, km, config(), tmp_path / "ablate", jit_fast_path=False
        )
        rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end))
        stream = self._mixed_stream(rig)
        cats = rp.classify_chunk(stream)
        assert rp.JIT not in cats
        assert cats == [rp.classify(s) for s in stream]
