"""Unit tests for epoch code maps and backward resolution."""

import pytest

from repro.errors import CodeMapError
from repro.viprof.codemap import (
    CodeMap,
    CodeMapIndex,
    CodeMapRecord,
    CodeMapWriter,
)


def rec(addr, size=0x100, name="a.B.m", tier="baseline"):
    return CodeMapRecord(address=addr, size=size, tier=tier, name=name)


class TestCodeMapRecord:
    def test_validation(self):
        with pytest.raises(CodeMapError):
            rec(0)
        with pytest.raises(CodeMapError):
            CodeMapRecord(address=0x1000, size=0, tier="O1", name="x")

    def test_contains(self):
        r = rec(0x1000, 0x100)
        assert r.contains(0x1000)
        assert r.contains(0x10FF)
        assert not r.contains(0x1100)

    def test_line_roundtrip(self):
        r = CodeMapRecord(
            address=0x60812340, size=0x420, tier="O1",
            name="org.example.app.Scanner.parseLine",
        )
        assert CodeMapRecord.from_line(r.to_line()) == r

    def test_name_with_spaces_roundtrips(self):
        r = CodeMapRecord(
            address=0x1000, size=0x10, tier="O0", name="weird name (x)"
        )
        assert CodeMapRecord.from_line(r.to_line()) == r

    def test_malformed_line_rejected(self):
        with pytest.raises(CodeMapError, match="malformed"):
            CodeMapRecord.from_line("not a map line")

    def test_moved_flag_roundtrips(self):
        r = CodeMapRecord(
            address=0x6081_0000, size=0x420, tier="O1",
            name="org.example.app.Scanner.parseLine", moved=True,
        )
        assert "/M" in r.to_line()
        assert CodeMapRecord.from_line(r.to_line()) == r

    def test_unmoved_record_keeps_legacy_format(self):
        r = CodeMapRecord(address=0x1000, size=0x10, tier="O0", name="m")
        assert "/M" not in r.to_line()
        legacy = CodeMapRecord.from_line(r.to_line())
        assert legacy.moved is False


class TestCodeMapWriterAndLoad:
    def test_write_and_load(self, tmp_path):
        w = CodeMapWriter(tmp_path)
        path = w.write(3, [rec(0x2000), rec(0x1000, name="c.D.n")])
        cm = CodeMap.load(path)
        assert cm.epoch == 3
        assert len(cm) == 2
        assert cm.records[0].address == 0x1000  # sorted

    def test_duplicate_epoch_rejected(self, tmp_path):
        w = CodeMapWriter(tmp_path)
        w.write(1, [rec(0x1000)])
        with pytest.raises(CodeMapError, match="already written"):
            w.write(1, [rec(0x2000)])

    def test_negative_epoch_rejected(self, tmp_path):
        with pytest.raises(CodeMapError):
            CodeMapWriter(tmp_path).write(-1, [])

    def test_empty_map_allowed(self, tmp_path):
        w = CodeMapWriter(tmp_path)
        cm = CodeMap.load(w.write(0, []))
        assert len(cm) == 0

    def test_stats(self, tmp_path):
        w = CodeMapWriter(tmp_path)
        w.write(0, [rec(0x1000)])
        w.write(1, [rec(0x2000), rec(0x3000)])
        assert w.maps_written == 2
        assert w.records_written == 3

    def test_overlapping_records_rejected_on_load(self, tmp_path):
        with pytest.raises(CodeMapError, match="overlap"):
            CodeMap(0, [rec(0x1000, 0x200), rec(0x1100, 0x100, name="x.Y.z")])

    def test_bad_header_rejected(self, tmp_path):
        p = tmp_path / "jit-map.00009"
        p.write_text("bogus\n")
        with pytest.raises(CodeMapError, match="bad header"):
            CodeMap.load(p)


class TestCodeMapIndex:
    def build_index(self, tmp_path):
        w = CodeMapWriter(tmp_path)
        # Epoch 0: method M at 0x1000; method N at 0x5000.
        w.write(0, [rec(0x1000, 0x100, "M"), rec(0x5000, 0x100, "N")])
        # Epoch 1: M moved to 0x2000 (0x1000 is stale).
        w.write(1, [rec(0x2000, 0x100, "M")])
        # Epoch 2: new method P compiled at 0x1000 (address recycled!).
        w.write(2, [rec(0x1000, 0x100, "P")])
        return CodeMapIndex.load_dir(tmp_path)

    def test_load_dir(self, tmp_path):
        idx = self.build_index(tmp_path)
        assert idx.epochs == (0, 1, 2)

    def test_resolve_in_own_epoch(self, tmp_path):
        idx = self.build_index(tmp_path)
        record, epoch = idx.resolve(2, 0x1050)
        assert record.name == "P" and epoch == 2

    def test_backward_traversal(self, tmp_path):
        idx = self.build_index(tmp_path)
        # N never moved after epoch 0: a sample in epoch 2 at N's address
        # must walk back to epoch 0.
        record, epoch = idx.resolve(2, 0x5010)
        assert record.name == "N" and epoch == 0

    def test_epoch_scoping_prevents_future_maps(self, tmp_path):
        idx = self.build_index(tmp_path)
        # A sample from epoch 0 at 0x1000 is M, not P (epoch 2 is later).
        record, epoch = idx.resolve(0, 0x1040)
        assert record.name == "M" and epoch == 0

    def test_address_recycling_resolves_most_recent(self, tmp_path):
        idx = self.build_index(tmp_path)
        # Sample in epoch 1 at 0x1000: not in map 1, map 0 has M.
        record, epoch = idx.resolve(1, 0x1000)
        assert record.name == "M"

    def test_unknown_address_returns_none(self, tmp_path):
        idx = self.build_index(tmp_path)
        assert idx.resolve(2, 0x9999_0000) is None

    def test_epoch_beyond_maps_clamped(self, tmp_path):
        idx = self.build_index(tmp_path)
        record, _ = idx.resolve(50, 0x1020)
        assert record.name == "P"

    def test_negative_epoch_searches_from_latest(self, tmp_path):
        idx = self.build_index(tmp_path)
        record, _ = idx.resolve(-1, 0x1020)
        assert record.name == "P"

    def test_empty_index(self, tmp_path):
        idx = CodeMapIndex.load_dir(tmp_path)
        assert idx.resolve(0, 0x1000) is None

    def test_missing_epoch_files_skipped(self, tmp_path):
        w = CodeMapWriter(tmp_path)
        w.write(0, [rec(0x1000, 0x100, "M")])
        w.write(5, [rec(0x2000, 0x100, "Q")])
        idx = CodeMapIndex.load_dir(tmp_path)
        record, epoch = idx.resolve(5, 0x1050)
        assert record.name == "M" and epoch == 0

    def test_filename_epoch_mismatch_rejected(self, tmp_path):
        w = CodeMapWriter(tmp_path)
        p = w.write(3, [rec(0x1000)])
        p.rename(tmp_path / "jit-map.00007")
        with pytest.raises(CodeMapError, match="filename epoch"):
            CodeMapIndex.load_dir(tmp_path)

    def test_non_map_files_ignored(self, tmp_path):
        w = CodeMapWriter(tmp_path)
        w.write(0, [rec(0x1000)])
        (tmp_path / "README").write_text("not a map")
        idx = CodeMapIndex.load_dir(tmp_path)
        assert idx.epochs == (0,)

    def test_lookup_stats(self, tmp_path):
        idx = self.build_index(tmp_path)
        idx.resolve(2, 0x5010)  # walks 2 epochs back
        assert idx.lookups == 1
        assert idx.fallback_steps == 2
