"""Tests for the ablation switches (DESIGN.md §5).

Each ablation must (a) still produce a working profiler and (b) move the
cost/accuracy needle in the direction the paper's design argument predicts.
"""

import pytest

from repro import viprof_profile
from tests.conftest import make_tiny_workload


def profiled(tmp_path, name, **engine_flags):
    from repro.oprofile.opcontrol import OprofileConfig
    from repro.system.engine import EngineConfig, ProfilerMode, SystemEngine

    cfg = EngineConfig(
        mode=ProfilerMode.VIPROF,
        profile_config=OprofileConfig.paper_config(45_000),
        session_dir=tmp_path / name,
        seed=3,
        noise=False,
        background=False,
        **engine_flags,
    )
    return SystemEngine(make_tiny_workload(base_time_s=0.4), cfg).run()


class TestFullMapRewrite:
    def test_costs_more_and_writes_more_records(self, tmp_path):
        paper = profiled(tmp_path, "paper")
        full = profiled(tmp_path, "full", viprof_full_maps=True)
        assert full.agent_stats.records_written > paper.agent_stats.records_written
        from repro.profiling.model import Layer

        assert (
            full.ledger.layer_cycles(Layer.AGENT)
            > paper.ledger.layer_cycles(Layer.AGENT)
        )

    def test_full_maps_still_resolve(self, tmp_path):
        full = profiled(tmp_path, "full2", viprof_full_maps=True)
        stats = full.viprof_report().jit_stats
        assert stats.resolution_rate > 0.9


class TestEagerMoveLogging:
    def test_gc_path_cost_increases(self, tmp_path):
        paper = profiled(tmp_path, "paper3")
        eager = profiled(tmp_path, "eager", viprof_eager_move_log=True)
        from repro.profiling.model import Layer

        # Same moves, but each one now pays the call-out-of-GC price.
        assert (
            eager.ledger.layer_cycles(Layer.AGENT)
            > paper.ledger.layer_cycles(Layer.AGENT)
        )

    def test_eager_logging_still_resolves(self, tmp_path):
        eager = profiled(tmp_path, "eager2", viprof_eager_move_log=True)
        assert eager.viprof_report().jit_stats.resolution_rate > 0.9


class TestAnonPathAblation:
    def test_daemon_pays_anon_costs(self, tmp_path):
        paper = profiled(tmp_path, "paper4")
        anon = profiled(tmp_path, "anon", viprof_anon_path=True)
        assert paper.daemon_stats.jit_samples > 0
        assert anon.daemon_stats.jit_samples == 0
        assert anon.daemon_stats.anon_samples > 0

    def test_post_processing_unaffected(self, tmp_path):
        """Resolution works either way — the fast path is purely a runtime
        cost optimization (epochs are stamped at NMI time)."""
        anon = profiled(tmp_path, "anon2", viprof_anon_path=True)
        assert anon.viprof_report().jit_stats.resolution_rate > 0.9


class TestBackwardTraversalAblation:
    def test_own_epoch_only_loses_samples(self, tmp_path):
        run = profiled(tmp_path, "bt")
        with_bt = run.viprof_report(backward_traversal=True).jit_stats
        without = run.viprof_report(backward_traversal=False).jit_stats
        assert without.unresolved > with_bt.unresolved
        assert without.resolution_rate < with_bt.resolution_rate
        assert with_bt.resolution_rate > 0.95
