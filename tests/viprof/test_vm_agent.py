"""Unit tests for the VIProf VM agent: compile logging, flag-don't-log
moves, partial per-epoch map writes, exit flush."""

from repro.jvm.compiler import CompilerTier, JitCompiler
from repro.viprof.codemap import CodeMapIndex, CodeMapWriter
from repro.viprof.vm_agent import AgentCosts, ViprofVmAgent
from tests.conftest import make_tiny_methods


def make_agent(tmp_path, costs=None):
    return ViprofVmAgent(writer=CodeMapWriter(tmp_path), costs=costs)


def body_at(addr, tier=CompilerTier.BASELINE, epoch=0, method=None):
    compiler = JitCompiler()
    m = method or make_tiny_methods(1)[0]
    job = compiler.plan(m, tier)
    return compiler.make_body(job, addr, epoch)


class TestCompileLogging:
    def test_on_compile_buffers_and_costs(self, tmp_path):
        agent = make_agent(tmp_path)
        cost = agent.on_compile(body_at(0x6080_0000))
        assert cost == agent.costs.log_compile
        assert agent.stats.compiles_logged == 1
        # Nothing on disk yet: the log is a buffer.
        assert agent.writer.maps_written == 0

    def test_compile_address_captured_at_log_time(self, tmp_path):
        """The buffer entry must hold the address at compile time even if
        the body object later relocates (paper: the hook writes address,
        size, signature into the buffer immediately)."""
        agent = make_agent(tmp_path)
        b = body_at(0x6080_0000)
        agent.on_compile(b)
        b.relocate(0x6100_0000, promoted=True)
        agent.pre_gc(0)
        idx = CodeMapIndex.load_dir(agent.writer.map_dir)
        assert idx.resolve(0, 0x6080_0010) is not None


class TestMoveFlagging:
    def test_flag_is_cheap_and_deferred(self, tmp_path):
        costs = AgentCosts()
        agent = make_agent(tmp_path, costs)
        b = body_at(0x6080_0000)
        cost = agent.on_code_move(b, 0x6070_0000)
        assert cost == costs.flag_move
        assert costs.flag_move < costs.log_compile < costs.map_write_base
        assert agent.stats.moves_flagged == 1
        assert agent.writer.maps_written == 0

    def test_double_flag_writes_once(self, tmp_path):
        agent = make_agent(tmp_path)
        b = body_at(0x6080_0000)
        agent.on_code_move(b, 0x1000)
        agent.on_code_move(b, 0x2000)
        agent.pre_gc(0)
        idx = CodeMapIndex.load_dir(agent.writer.map_dir)
        assert len(idx.map_for(0)) == 1


class TestMapWrites:
    def test_pre_gc_writes_partial_map(self, tmp_path):
        agent = make_agent(tmp_path)
        agent.on_compile(body_at(0x6080_0000))
        agent.on_compile(body_at(0x6080_1000))
        cost = agent.pre_gc(0)
        assert cost == (
            agent.costs.map_write_base + 2 * agent.costs.map_write_per_record
        )
        idx = CodeMapIndex.load_dir(agent.writer.map_dir)
        assert len(idx.map_for(0)) == 2

    def test_buffers_cleared_after_write(self, tmp_path):
        agent = make_agent(tmp_path)
        agent.on_compile(body_at(0x6080_0000))
        agent.pre_gc(0)
        agent.pre_gc(1)
        idx = CodeMapIndex.load_dir(agent.writer.map_dir)
        assert len(idx.map_for(1)) == 0  # second map is empty: partial!

    def test_flagged_bodies_written_at_current_address(self, tmp_path):
        agent = make_agent(tmp_path)
        b = body_at(0x6080_0000)
        agent.on_compile(b)
        agent.pre_gc(0)
        b.relocate(0x6100_0000, promoted=True)  # the GC closing epoch 0
        agent.on_code_move(b, 0x6080_0000)
        agent.pre_gc(1)
        idx = CodeMapIndex.load_dir(agent.writer.map_dir)
        rec, epoch = idx.resolve(1, 0x6100_0008)
        assert epoch == 1
        rec0, epoch0 = idx.resolve(0, 0x6080_0008)
        assert epoch0 == 0

    def test_obsolete_flagged_body_still_written(self, tmp_path):
        agent = make_agent(tmp_path)
        b = body_at(0x6090_0000)
        b.obsolete = True
        agent.on_code_move(b, 0x6080_0000)
        agent.pre_gc(0)
        idx = CodeMapIndex.load_dir(agent.writer.map_dir)
        assert idx.resolve(0, 0x6090_0000) is not None

    def test_post_gc_is_free(self, tmp_path):
        agent = make_agent(tmp_path)
        assert agent.post_gc(1) == 0


class TestExitFlush:
    def test_exit_writes_final_epoch_map(self, tmp_path):
        agent = make_agent(tmp_path)
        agent.on_compile(body_at(0x6080_0000))
        cost = agent.on_exit(5)
        assert cost > 0
        idx = CodeMapIndex.load_dir(agent.writer.map_dir)
        assert idx.map_for(5) is not None

    def test_exit_with_nothing_pending_is_free(self, tmp_path):
        agent = make_agent(tmp_path)
        assert agent.on_exit(3) == 0
        assert agent.writer.maps_written == 0


class TestRegistration:
    def test_startup_registers_with_runtime_profiler(self, tmp_path):
        class FakeRp:
            def __init__(self):
                self.calls = []

            def register_vm(self, task_id, heap_bounds, epoch_source):
                self.calls.append((task_id, heap_bounds, epoch_source))

        rp = FakeRp()
        agent = ViprofVmAgent(
            writer=CodeMapWriter(tmp_path),
            runtime_profiler=rp,
            epoch_source=lambda: 9,
            vm_task_id=1234,
        )
        cost = agent.on_startup((0x6080_0000, 0x6200_0000))
        assert cost == agent.costs.register
        assert rp.calls == [
            (1234, (0x6080_0000, 0x6200_0000), agent.epoch_source)
        ]

    def test_startup_without_profiler_is_safe(self, tmp_path):
        agent = make_agent(tmp_path)
        assert agent.on_startup((0, 100)) == agent.costs.register
