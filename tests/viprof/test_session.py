"""Unit tests for the ViprofSession wiring."""

import pytest

from repro.errors import ProfilerError
from repro.hardware.cpu import CPU
from repro.oprofile.opcontrol import OprofileConfig
from repro.os.kernel import Kernel
from repro.viprof.session import ViprofSession


def make_session(tmp_path):
    return ViprofSession(
        Kernel(), OprofileConfig.paper_config(90_000), tmp_path / "sess"
    )


class TestSession:
    def test_directory_layout(self, tmp_path):
        s = make_session(tmp_path)
        assert s.map_dir.exists()
        assert s.map_dir.name == "jit-maps"
        assert s.sample_dir.name == "samples"

    def test_make_agent_once(self, tmp_path):
        s = make_session(tmp_path)
        agent = s.make_agent(vm_task_id=1000, epoch_source=lambda: 0)
        assert s.agent is agent
        with pytest.raises(ProfilerError, match="already has"):
            s.make_agent(vm_task_id=1000, epoch_source=lambda: 0)

    def test_agent_before_make_rejected(self, tmp_path):
        s = make_session(tmp_path)
        with pytest.raises(ProfilerError):
            _ = s.agent

    def test_start_stop_lifecycle(self, tmp_path):
        s = make_session(tmp_path)
        cpu = CPU()
        s.start(cpu)
        assert cpu.nmi.armed
        assert len(cpu.counters) == 2
        s.stop()
        assert not cpu.nmi.armed
        with pytest.raises(ProfilerError):
            s.stop()

    def test_double_start_rejected(self, tmp_path):
        s = make_session(tmp_path)
        cpu = CPU()
        s.start(cpu)
        with pytest.raises(ProfilerError):
            s.start(cpu)

    def test_report_requires_artifacts(self, tmp_path):
        from repro.jvm.bootimage import build_boot_image

        s = make_session(tmp_path)
        cpu = CPU()
        s.start(cpu)
        s.stop()
        post = s.report(build_boot_image().rvm_map)
        report = post.generate()
        assert report.totals["GLOBAL_POWER_EVENTS"] == 0
