"""Property-style tests for backward epoch-walk resolution (paper §3.2).

A randomized model of the agent/GC interaction: methods are compiled at
fresh addresses, the copying collector moves live bodies and *recycles*
their old address ranges for later compilations, and a partial map is
written per epoch exactly as the agent writes it (this epoch's compiles
plus bodies moved by the collection that opened the epoch).  The model
tracks ground truth — which body occupied every address during every
epoch — and asserts that ``CodeMapIndex.resolve`` attributes each sample
to the most recent occupant, across many random schedules.
"""

import random

import pytest

from repro.viprof.codemap import CodeMapIndex, CodeMapRecord, CodeMapWriter

BODY_SIZE = 0x100  # uniform sizes keep free-range reuse exact


class EpochWorld:
    """Randomized compile/move/GC schedule with ground-truth tracking."""

    def __init__(self, seed: int, epochs: int = 10):
        self.rng = random.Random(seed)
        self.epochs = epochs
        self.live: dict[str, int] = {}  # name -> current address
        self.free: list[int] = []  # recycled address ranges
        self.bump = 0x6000_0000
        self.counter = 0
        #: per-epoch snapshot: name -> address during that epoch
        self.snapshots: list[dict[str, int]] = []

    def alloc(self) -> int:
        # Prefer recycling a freed range: that is the hard case the
        # backward walk must get right (same address, different method).
        if self.free and self.rng.random() < 0.7:
            return self.free.pop(self.rng.randrange(len(self.free)))
        addr = self.bump
        self.bump += BODY_SIZE
        return addr

    def run(self, map_dir) -> CodeMapIndex:
        writer = CodeMapWriter(map_dir)
        moved_by_prev_gc: dict[str, int] = {}
        for epoch in range(self.epochs):
            compiled: dict[str, int] = {}
            for _ in range(self.rng.randrange(1, 4)):
                name = f"m{self.counter}"
                self.counter += 1
                addr = self.alloc()
                self.live[name] = addr
                compiled[name] = addr
            # The epoch's partial map: this epoch's compiles + bodies the
            # previous collection moved, at their current addresses.
            records = [
                CodeMapRecord(
                    address=a, size=BODY_SIZE, tier="base", name=n
                )
                for n, a in compiled.items()
            ] + [
                CodeMapRecord(
                    address=a, size=BODY_SIZE, tier="base", name=n,
                    moved=True,
                )
                for n, a in moved_by_prev_gc.items()
                if n not in compiled
            ]
            writer.write(epoch, records)
            self.snapshots.append(dict(self.live))
            # GC closing this epoch: move a random subset of live bodies.
            moved_by_prev_gc = {}
            names = sorted(self.live)
            self.rng.shuffle(names)
            for name in names[: self.rng.randrange(0, len(names) + 1)]:
                old = self.live[name]
                self.free.append(old)
                self.live[name] = self.alloc()
                moved_by_prev_gc[name] = self.live[name]
        return CodeMapIndex.load_dir(map_dir)


@pytest.mark.parametrize("seed", range(12))
def test_every_sample_resolves_to_most_recent_occupant(tmp_path, seed):
    world = EpochWorld(seed)
    index = world.run(tmp_path)
    checked = 0
    for epoch, snapshot in enumerate(world.snapshots):
        for name, addr in snapshot.items():
            # Sample anywhere inside the body while it lived there.
            pc = addr + world.rng.randrange(BODY_SIZE)
            hit = index.resolve(epoch, pc)
            assert hit is not None, (
                f"epoch {epoch}: pc {pc:#x} (truth {name}) is an orphan"
            )
            record, found_epoch = hit
            assert record.name == name, (
                f"epoch {epoch}: pc {pc:#x} resolved to {record.name} "
                f"(epoch {found_epoch}), truth is {name}"
            )
            assert found_epoch <= epoch
            checked += 1
    assert checked > world.epochs  # the schedule produced real coverage


@pytest.mark.parametrize("seed", [0, 3, 5])
def test_recycled_addresses_are_attributed_per_epoch(tmp_path, seed):
    """An address reused across epochs resolves differently per epoch."""
    world = EpochWorld(seed, epochs=12)
    index = world.run(tmp_path)
    # Find an address whose occupant changed between two epochs.
    reused = None
    for e1, s1 in enumerate(world.snapshots):
        owners1 = {a: n for n, a in s1.items()}
        for e2 in range(e1 + 1, len(world.snapshots)):
            owners2 = {a: n for n, a in world.snapshots[e2].items()}
            for addr, n1 in owners1.items():
                n2 = owners2.get(addr)
                if n2 is not None and n2 != n1:
                    reused = (e1, e2, addr, n1, n2)
                    break
            if reused:
                break
        if reused:
            break
    if reused is None:
        pytest.skip("schedule produced no address reuse for this seed")
    e1, e2, addr, n1, n2 = reused
    assert index.resolve(e1, addr)[0].name == n1
    assert index.resolve(e2, addr)[0].name == n2


@pytest.mark.parametrize("seed", [1, 4])
def test_ablation_own_epoch_only_loses_samples(tmp_path, seed):
    """backward=False must never resolve *more* than the full walk."""
    world = EpochWorld(seed)
    index = world.run(tmp_path)
    full = own = 0
    for epoch, snapshot in enumerate(world.snapshots):
        for name, addr in snapshot.items():
            if index.resolve(epoch, addr) is not None:
                full += 1
            if index.resolve(epoch, addr, backward=False) is not None:
                own += 1
    assert own <= full
    assert full == sum(len(s) for s in world.snapshots)


# ----------------------------------------------------------------------
# Quarantine barriers (crash recovery): resolving over a salvaged map
# subset must never *invent* an attribution the full walk would not make.
# ----------------------------------------------------------------------

import re
import shutil

from repro.viprof.codemap import RESOLVE_BLOCKED

_MAP_NAME_RE = re.compile(r"^jit-map\.(\d{5})$")


def _guarded_index(map_dir, dest, quarantine):
    """The salvaged view: quarantined epochs' maps removed from disk,
    their epochs fenced off as barriers."""
    dest.mkdir()
    for p in sorted(map_dir.iterdir()):
        m = _MAP_NAME_RE.match(p.name)
        if m and int(m.group(1)) not in quarantine:
            shutil.copy(p, dest / p.name)
    return CodeMapIndex.load_dir(dest, quarantined=quarantine)


@pytest.mark.parametrize("seed", range(8))
def test_quarantined_walk_agrees_with_full_walk_or_blocks(tmp_path, seed):
    """For every ground-truth sample: the guarded walk either returns
    exactly the full walk's answer, or RESOLVE_BLOCKED — never a
    different (in particular never an *older* occupant of a recycled
    address, which is how a missing map could lie)."""
    world = EpochWorld(seed)
    full = world.run(tmp_path / "maps")
    rng = random.Random(seed ^ 0xA5A5)
    quarantine = frozenset(
        e for e in range(world.epochs) if rng.random() < 0.3
    )
    guarded = _guarded_index(tmp_path / "maps", tmp_path / "q", quarantine)

    agreed = blocked = 0
    for epoch, snapshot in enumerate(world.snapshots):
        for name, addr in snapshot.items():
            pc = addr + rng.randrange(BODY_SIZE)
            want = full.resolve(epoch, pc)
            assert want is not None  # truth coverage (tested above)
            got = guarded.resolve(epoch, pc)
            if got is RESOLVE_BLOCKED:
                blocked += 1
                # A barrier is only justified by a quarantined epoch
                # between the full walk's hit and the sample's epoch.
                _, found_epoch = want
                assert any(
                    found_epoch <= q <= epoch for q in quarantine
                ), (
                    f"epoch {epoch}: pc {pc:#x} blocked with no "
                    f"quarantined epoch in [{found_epoch}, {epoch}]"
                )
                continue
            agreed += 1
            assert got is not None
            assert got[0].name == want[0].name == name
            assert got[1] == want[1] <= epoch
    if not quarantine:
        assert blocked == 0
    assert agreed > 0


@pytest.mark.parametrize("seed", [0, 2, 6])
def test_sample_in_quarantined_epoch_always_blocks(tmp_path, seed):
    """A sample tagged with a quarantined epoch hits the barrier
    immediately: its own epoch's compilations are unknowable, so *any*
    answer could be a newer method the lost map would have named."""
    world = EpochWorld(seed)
    world.run(tmp_path / "maps")
    victim = world.epochs // 2
    guarded = _guarded_index(
        tmp_path / "maps", tmp_path / "q", frozenset({victim})
    )
    snapshot = world.snapshots[victim]
    for name, addr in snapshot.items():
        assert guarded.resolve(victim, addr) is RESOLVE_BLOCKED


@pytest.mark.parametrize("seed", [1, 5])
def test_quarantine_never_widens_resolution(tmp_path, seed):
    """Counting check across random subsets: guarded hits are a subset
    of full hits — fencing epochs off can only lose attributions, never
    create ones the full walk would not have made."""
    world = EpochWorld(seed)
    full = world.run(tmp_path / "maps")
    rng = random.Random(seed * 31 + 7)
    for trial in range(4):
        quarantine = frozenset(
            e for e in range(world.epochs) if rng.random() < 0.4
        )
        guarded = _guarded_index(
            tmp_path / "maps", tmp_path / f"q{trial}", quarantine
        )
        for epoch, snapshot in enumerate(world.snapshots):
            for _, addr in snapshot.items():
                got = guarded.resolve(epoch, addr)
                if got is RESOLVE_BLOCKED or got is None:
                    continue
                assert got == full.resolve(epoch, addr)
