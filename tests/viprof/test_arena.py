"""The compiled code-map arena: format, parity, and failure modes.

The contract under test (see :mod:`repro.viprof.arena`): the arena is a
pure derived cache.  Arena-backed resolution must be byte- and
stats-identical to text-map resolution at any worker count, and any
damaged or stale arena must be rejected on open so ``load_dir`` degrades
to the text path — a wrong report is never a possible outcome.
"""

import pickle

import pytest

from repro.errors import ArenaError, CodeMapError, InjectedFault
from repro.faults import ARENA_WRITE, FaultPlan, arm
from repro.viprof.arena import (
    ArenaCodeMap,
    CodeMapArena,
    arena_path_for,
    build_arena,
    source_digests,
)
from repro.viprof.codemap import (
    CodeMapIndex,
    CodeMapRecord,
    CodeMapWriter,
)
from tests.conftest import make_tiny_workload


def rec(addr, size=0x100, name="a.B.m", tier="baseline", moved=False):
    return CodeMapRecord(
        address=addr, size=size, tier=tier, name=name, moved=moved
    )


@pytest.fixture()
def map_dir(tmp_path):
    """Three epochs with shared names/tiers (exercises deduplication)
    and one moved record."""
    w = CodeMapWriter(tmp_path / "jit-maps")
    w.write(0, [rec(0x6080_0000), rec(0x6080_1000, name="c.D.n", tier="O1")])
    w.write(1, [rec(0x6080_0000, name="c.D.n", tier="O1", moved=True)])
    w.write(2, [rec(0x6080_2000, size=0x420, name="e.F.p", tier="O2")])
    return tmp_path / "jit-maps"


class TestBuildAndOpen:
    def test_roundtrip_matches_text_load(self, map_dir):
        path = build_arena(map_dir)
        assert path == arena_path_for(map_dir)
        arena = CodeMapArena.open(path)
        text = CodeMapIndex.load_dir(map_dir, arena=False)
        assert arena.epochs == text.epochs
        assert arena.records == sum(
            len(text.map_for(e)) for e in text.epochs
        )
        for epoch in arena.epochs:
            assert (
                arena.epoch_map(epoch).records
                == text.map_for(epoch).records
            )
        arena.close()

    def test_build_is_byte_deterministic(self, map_dir):
        first = build_arena(map_dir).read_bytes()
        assert build_arena(map_dir).read_bytes() == first

    def test_empty_map_dir_builds_nothing_and_clears(self, tmp_path):
        map_dir = tmp_path / "jit-maps"
        map_dir.mkdir()
        arena_path_for(map_dir).write_bytes(b"old arena")
        assert build_arena(map_dir) is None
        assert not arena_path_for(map_dir).exists()

    def test_malformed_source_map_rejected(self, map_dir):
        (map_dir / "jit-map.00001").write_text("bogus\n")
        with pytest.raises(CodeMapError):
            build_arena(map_dir)

    def test_lookup_parity_with_text_map(self, map_dir):
        text = CodeMapIndex.load_dir(map_dir, arena=False)
        probes = [
            0x6080_0000, 0x6080_00FF, 0x6080_0100, 0x6080_1000,
            0x6080_2000, 0x6080_241F, 0x6080_2420, 0x7000_0000,
        ]
        with CodeMapArena.open(build_arena(map_dir)) as arena:
            for epoch in arena.epochs:
                packed = arena.epoch_map(epoch)
                plain = text.map_for(epoch)
                for p in probes:
                    assert packed.lookup(p) == plain.lookup(p)
                assert packed.lookup_run(sorted(probes)) == [
                    plain.lookup(p) for p in sorted(probes)
                ]

    def test_records_materialize_lazily(self, map_dir):
        with CodeMapArena.open(build_arena(map_dir)) as arena:
            packed = arena.epoch_map(0)
            assert not packed._rows
            hit = packed.lookup(0x6080_1000)
            assert hit is not None and hit.name == "c.D.n"
            assert len(packed._rows) == 1

    def test_stale_reasons_name_the_change(self, map_dir):
        build_arena(map_dir)
        with CodeMapArena.open(arena_path_for(map_dir)) as arena:
            assert arena.stale_reasons(map_dir) == []
            victim = map_dir / "jit-map.00002"
            victim.write_text(
                victim.read_text() + rec(0x6080_3000).to_line() + "\n"
            )
            assert any(
                "changed on disk" in r
                for r in arena.stale_reasons(map_dir)
            )
        with pytest.raises(ArenaError, match="stale"):
            CodeMapArena.open_fresh(map_dir)

    def test_source_digests_cover_every_map_file(self, map_dir):
        names = [name for name, _, _ in source_digests(map_dir)]
        assert names == sorted(
            p.name for p in map_dir.iterdir() if p.name.startswith("jit-map.")
        )


class TestDamagedArenaRejected:
    """Every corruption is caught at open; `load_dir` then silently
    parses the text maps instead."""

    def damage(self, map_dir, mutate):
        path = build_arena(map_dir)
        mutate(path)
        return path

    @pytest.mark.parametrize("mutate", [
        lambda p: p.write_bytes(p.read_bytes()[:5]),          # torn prelude
        lambda p: p.write_bytes(p.read_bytes()[:-3]),         # torn body
        lambda p: p.write_bytes(b"XXXX" + p.read_bytes()[4:]),  # bad magic
        lambda p: p.write_bytes(
            p.read_bytes()[:4] + b"\xff\xff" + p.read_bytes()[6:]
        ),                                                    # bad version
        lambda p: p.write_bytes(
            p.read_bytes()[:-1] + bytes([p.read_bytes()[-1] ^ 0xFF])
        ),                                                    # bit flip
    ], ids=["torn-prelude", "torn-body", "bad-magic", "bad-version",
            "bit-flip"])
    def test_open_rejects(self, map_dir, mutate):
        path = self.damage(map_dir, mutate)
        with pytest.raises(ArenaError):
            CodeMapArena.open(path)
        # ... and resolution survives on the text path, identically.
        idx = CodeMapIndex.load_dir(map_dir)
        text = CodeMapIndex.load_dir(map_dir, arena=False)
        assert idx.epochs == text.epochs

    def test_require_mode_raises_on_damage(self, map_dir):
        self.damage(map_dir, lambda p: p.write_bytes(p.read_bytes()[:9]))
        with pytest.raises(ArenaError):
            CodeMapIndex.load_dir(map_dir, arena="require")

    def test_missing_arena_require_raises_auto_falls_back(self, map_dir):
        with pytest.raises(ArenaError):
            CodeMapIndex.load_dir(map_dir, arena="require")
        assert CodeMapIndex.load_dir(map_dir).epochs == (0, 1, 2)


class TestLoadDirIntegration:
    def test_auto_uses_fresh_arena(self, map_dir):
        build_arena(map_dir)
        idx = CodeMapIndex.load_dir(map_dir)
        assert all(
            isinstance(idx.map_for(e), ArenaCodeMap) for e in idx.epochs
        )

    def test_auto_never_uses_stale_arena(self, map_dir):
        build_arena(map_dir)
        victim = map_dir / "jit-map.00000"
        victim.write_text(
            victim.read_text() + rec(0x6090_0000).to_line() + "\n"
        )
        idx = CodeMapIndex.load_dir(map_dir)
        assert not any(
            isinstance(idx.map_for(e), ArenaCodeMap) for e in idx.epochs
        )
        # The new record is visible — proof we read the current maps.
        assert idx.map_for(0).lookup(0x6090_0000) is not None

    def test_quarantine_forces_text_path(self, map_dir):
        # Salvage moves a quarantined epoch's file out of the directory;
        # the surviving epochs must come from the text maps (the arena
        # still packs the lost epoch, so it would resolve differently).
        build_arena(map_dir)
        (map_dir / "jit-map.00001").unlink()
        idx = CodeMapIndex.load_dir(map_dir, quarantined=(1,))
        assert not any(
            isinstance(idx.map_for(e), ArenaCodeMap) for e in idx.epochs
        )

    def test_arena_false_ignores_arena(self, map_dir):
        build_arena(map_dir)
        idx = CodeMapIndex.load_dir(map_dir, arena=False)
        assert not any(
            isinstance(idx.map_for(e), ArenaCodeMap) for e in idx.epochs
        )


class TestPickling:
    def test_arena_codemap_ships_path_and_epoch(self, map_dir):
        with CodeMapArena.open(build_arena(map_dir)) as arena:
            packed = arena.epoch_map(1)
            blob = pickle.dumps(packed)
            # The payload is a (path, epoch) stub, not the columns.
            assert len(blob) < 400
            clone = pickle.loads(blob)
            assert clone.epoch == 1
            assert clone.records == packed.records

    def test_unpickling_shares_one_mapping_per_process(self, map_dir):
        with CodeMapArena.open(build_arena(map_dir)) as arena:
            a = pickle.loads(pickle.dumps(arena.epoch_map(0)))
            b = pickle.loads(pickle.dumps(arena.epoch_map(1)))
            assert a._arena is b._arena


class TestFaultHarness:
    def test_torn_write_fault_leaves_detectable_damage(self, map_dir):
        with arm(FaultPlan(ARENA_WRITE, hit=1, seed=5)):
            with pytest.raises(InjectedFault):
                build_arena(map_dir)
        path = arena_path_for(map_dir)
        assert path.exists()  # the torn prefix landed at the final path
        with pytest.raises(ArenaError):
            CodeMapArena.open(path)
        # Degraded, never wrong: text resolution still works.
        assert CodeMapIndex.load_dir(map_dir).epochs == (0, 1, 2)

    def test_rebuild_after_torn_write_recovers(self, map_dir):
        with arm(FaultPlan(ARENA_WRITE, hit=1, seed=5)):
            with pytest.raises(InjectedFault):
                build_arena(map_dir)
        path = build_arena(map_dir)
        arena = CodeMapArena.open_fresh(map_dir)
        assert arena.path == path
        arena.close()


class TestSessionIntegration:
    @pytest.fixture(scope="class")
    def vrun(self, tmp_path_factory):
        session_dir = tmp_path_factory.mktemp("arena-session")
        return viprof_profile_session(session_dir)

    def test_session_stop_builds_fresh_arena(self, vrun):
        arena = CodeMapArena.open_fresh(vrun.session_dir / "jit-maps")
        assert arena.records > 0
        arena.close()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_reports_byte_and_stats_identical(self, vrun, workers):
        arena_path = arena_path_for(vrun.session_dir / "jit-maps")
        blob = arena_path.read_bytes()
        packed = render(vrun, workers)
        try:
            arena_path.unlink()
            text = render(vrun, workers)
        finally:
            arena_path.write_bytes(blob)
        assert packed[0] == text[0]  # report bytes
        assert packed[1] == text[1]  # stage stats (incl. cache counters)

    def test_salvage_drops_the_stale_arena(self, vrun, tmp_path):
        import shutil

        from repro.viprof.salvage import salvage_session

        clone = tmp_path / "clone"
        shutil.copytree(vrun.session_dir, clone)
        assert arena_path_for(clone / "jit-maps").exists()
        salvage_session(clone)
        assert not arena_path_for(clone / "jit-maps").exists()


def viprof_profile_session(session_dir):
    from repro import viprof_profile

    return viprof_profile(
        make_tiny_workload(base_time_s=0.25), period=20_000,
        session_dir=session_dir, noise=False,
    )


def render(run, workers):
    vr = run.viprof_report(workers=workers)
    s = vr.jit_stats
    text = vr.report.format_table(limit=20) + "\n"
    text += (
        f"{s.jit_samples} JIT samples, "
        f"{100 * s.resolution_rate:.1f}% resolved\n"
    )
    return text, vr.stage_stats
