"""Property-based tests for code-map resolution.

The central correctness claim of the paper's epoch scheme: for any history
of compilations and moves, resolving (epoch, address) through the partial
maps returns exactly the method that occupied that address during that
epoch.  We build random histories with a simple allocator oracle and check
the maps against the oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.viprof.codemap import CodeMap, CodeMapIndex, CodeMapRecord, CodeMapWriter

SIZE = 0x100

# A history is a list of epochs; each epoch is a list of (slot, method_tag)
# placements meaning "method_tag now occupies slot".  Slots model
# addresses; a later placement of a slot supersedes earlier ones.
HISTORIES = st.lists(  # epochs
    st.lists(  # placements within the epoch
        st.tuples(
            st.integers(min_value=0, max_value=15),  # slot
            st.integers(min_value=0, max_value=30),  # method tag
        ),
        max_size=6,
    ),
    min_size=1,
    max_size=10,
)


def addr_of(slot: int) -> int:
    return 0x6080_0000 + slot * SIZE


def build(tmp_path, history):
    """Write one partial map per epoch containing exactly that epoch's
    placements (later placements of the same slot within an epoch win),
    and build the oracle: occupancy[epoch][slot] = tag."""
    writer = CodeMapWriter(tmp_path)
    occupancy: list[dict[int, int]] = []
    current: dict[int, int] = {}
    for epoch, placements in enumerate(history):
        epoch_final: dict[int, int] = {}
        for slot, tag in placements:
            epoch_final[slot] = tag
        current = {**current, **epoch_final}
        occupancy.append(dict(current))
        records = [
            CodeMapRecord(
                address=addr_of(slot), size=SIZE, tier="O0", name=f"m{tag}"
            )
            for slot, tag in epoch_final.items()
        ]
        writer.write(epoch, records)
    return CodeMapIndex.load_dir(tmp_path), occupancy


class TestResolutionOracle:
    @given(history=HISTORIES, slot=st.integers(min_value=0, max_value=15),
           query_epoch=st.integers(min_value=0, max_value=9))
    @settings(max_examples=120, deadline=None)
    def test_resolution_matches_oracle(self, tmp_path_factory, history, slot,
                                       query_epoch):
        tmp = tmp_path_factory.mktemp("maps")
        idx, occupancy = build(tmp, history)
        e = min(query_epoch, len(history) - 1)
        expected = occupancy[e].get(slot)
        hit = idx.resolve(e, addr_of(slot) + 0x10)
        if expected is None:
            assert hit is None
        else:
            record, found_epoch = hit
            assert record.name == f"m{expected}"
            assert found_epoch <= e

    @given(history=HISTORIES)
    @settings(max_examples=60, deadline=None)
    def test_found_epoch_is_most_recent_placement(self, tmp_path_factory,
                                                  history):
        tmp = tmp_path_factory.mktemp("maps")
        idx, occupancy = build(tmp, history)
        last = len(history) - 1
        for slot, tag in occupancy[last].items():
            record, found_epoch = idx.resolve(last, addr_of(slot))
            # The epoch where it was found must contain that exact record.
            cm = idx.map_for(found_epoch)
            assert cm is not None
            assert cm.lookup(addr_of(slot)).name == record.name

    @given(history=HISTORIES)
    @settings(max_examples=60, deadline=None)
    def test_per_epoch_maps_never_overlap(self, tmp_path_factory, history):
        tmp = tmp_path_factory.mktemp("maps")
        idx, _ = build(tmp, history)
        for e in idx.epochs:
            cm = idx.map_for(e)
            recs = cm.records
            for a, b in zip(recs, recs[1:]):
                assert a.end <= b.address
