"""Unit tests for VIProf post-processing: code-map resolution of JIT
samples, boot-image symbolization, fall-through to stock behaviour."""

import pytest

from repro.jvm.bootimage import RVM_MAP_IMAGE_LABEL, build_boot_image
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.oprofile.kmodule import OprofileKernelModule
from repro.oprofile.opcontrol import EventSpec, OprofileConfig
from repro.os.binary import standard_libraries
from repro.os.kernel import Kernel
from repro.os.loader import ProgramLoader
from repro.profiling.model import RawSample
from repro.viprof.codemap import CodeMapIndex, CodeMapRecord, CodeMapWriter
from repro.viprof.postprocess import UNRESOLVED_JIT, ViprofReport
from repro.viprof.runtime_profiler import ViprofRuntimeProfiler


def config():
    return OprofileConfig(events=(EventSpec("GLOBAL_POWER_EVENTS", 90_000),))


@pytest.fixture
def rig(tmp_path):
    kernel = Kernel()
    proc = kernel.spawn("JikesRVM")
    loader = ProgramLoader(proc.address_space)
    libc_vma = loader.load_library(standard_libraries()[0])
    boot = build_boot_image()
    boot_vma = loader.map_file_segment(boot.image, at=0x6000_0000)
    heap_vma = loader.map_anonymous(0x200000, at=boot_vma.end + 0x1000)

    km = OprofileKernelModule(config())
    sample_dir = tmp_path / "samples"
    rp = ViprofRuntimeProfiler(kernel, km, config(), sample_dir)
    rp.register_vm(proc.pid, (heap_vma.start, heap_vma.end), lambda: 0)
    rp.start()

    map_dir = tmp_path / "maps"
    writer = CodeMapWriter(map_dir)
    # Epoch 0: method A at heap start; epoch 1: A moved up.
    a0 = heap_vma.start + 0x100
    a1 = heap_vma.start + 0x8000
    writer.write(0, [CodeMapRecord(a0, 0x200, "O0", "app.Main.hot")])
    writer.write(1, [CodeMapRecord(a1, 0x200, "O1", "app.Main.hot")])

    def add(pc, epoch=-1, kernel_mode=False, task=proc.pid):
        km.buffer.append(
            RawSample(
                pc=pc, event_name="GLOBAL_POWER_EVENTS", task_id=task,
                kernel_mode=kernel_mode, cycle=0, epoch=epoch,
            )
        )

    return {
        "kernel": kernel, "proc": proc, "libc": libc_vma, "boot": boot,
        "boot_vma": boot_vma, "heap": heap_vma, "km": km, "rp": rp,
        "writer": writer, "add": add, "sample_dir": sample_dir,
        "map_dir": map_dir, "a0": a0, "a1": a1,
    }


def build_report_obj(rig):
    rig["rp"].stop()
    return ViprofReport(
        kernel=rig["kernel"],
        sample_dir=rig["sample_dir"],
        codemaps=CodeMapIndex.load_dir(rig["map_dir"]),
        rvm_map=rig["boot"].rvm_map,
        registrations=rig["rp"].registrations,
    )


class TestJitResolution:
    def test_jit_sample_resolves_via_epoch_map(self, rig):
        rig["add"](rig["a0"] + 0x10, epoch=0)
        rig["km"].buffer and rig["rp"].wakeup()
        post = build_report_obj(rig)
        report = post.generate()
        row = report.row_for(JIT_APP_IMAGE_LABEL, "app.Main.hot")
        assert row is not None
        assert post.jit_stats.resolved_in_own_epoch == 1

    def test_moved_method_resolves_in_both_epochs(self, rig):
        rig["add"](rig["a0"] + 0x10, epoch=0)
        rig["add"](rig["a1"] + 0x10, epoch=1)
        rig["rp"].wakeup()
        post = build_report_obj(rig)
        report = post.generate()
        row = report.row_for(JIT_APP_IMAGE_LABEL, "app.Main.hot")
        assert row.count("GLOBAL_POWER_EVENTS") == 2

    def test_backward_traversal_for_unmoved_method(self, rig):
        # Sample in epoch 1 at the epoch-0 address: map 1 misses, map 0 hits.
        rig["add"](rig["a0"] + 0x10, epoch=1)
        rig["rp"].wakeup()
        post = build_report_obj(rig)
        post.generate()
        assert post.jit_stats.resolved_in_earlier_epoch == 1

    def test_unresolvable_jit_sample_reported(self, rig):
        rig["add"](rig["heap"].start + 0x100000, epoch=1)
        rig["rp"].wakeup()
        post = build_report_obj(rig)
        report = post.generate()
        assert report.row_for(JIT_APP_IMAGE_LABEL, UNRESOLVED_JIT) is not None
        assert post.jit_stats.unresolved == 1
        assert post.jit_stats.resolution_rate < 1.0


class TestBootImageResolution:
    def test_boot_sample_resolves_via_rvm_map(self, rig):
        entry = rig["boot"].rvm_map.find("com.ibm.jikesrvm.VM_MainThread.run")
        rig["add"](rig["boot_vma"].start + entry.offset + 4)
        rig["rp"].wakeup()
        report = build_report_obj(rig).generate()
        row = report.row_for(
            RVM_MAP_IMAGE_LABEL, "com.ibm.jikesrvm.VM_MainThread.run"
        )
        assert row is not None

    def test_boot_gap_reports_no_symbols(self, rig):
        rig["add"](rig["boot_vma"].start + 4)  # before the first map entry
        rig["rp"].wakeup()
        report = build_report_obj(rig).generate()
        assert any(
            r.image == RVM_MAP_IMAGE_LABEL and r.symbol == "(no symbols)"
            for r in report.rows
        )


class TestFallThrough:
    def test_libc_sample_resolves_normally(self, rig):
        libc = rig["libc"].image
        off = libc.find_symbol("memset").offset
        rig["add"](rig["libc"].start + off)
        rig["rp"].wakeup()
        report = build_report_obj(rig).generate()
        assert report.row_for("libc-2.3.2.so", "memset") is not None

    def test_kernel_sample_resolves_normally(self, rig):
        rig["add"](
            rig["kernel"].kernel_pc("do_page_fault"), kernel_mode=True
        )
        rig["rp"].wakeup()
        report = build_report_obj(rig).generate()
        assert report.row_for("vmlinux", "do_page_fault") is not None

    def test_other_task_heap_address_not_jit(self, rig):
        other = rig["kernel"].spawn("other")
        oloader = ProgramLoader(other.address_space)
        rig["add"](rig["a0"], task=other.pid)
        rig["rp"].wakeup()
        post = build_report_obj(rig)
        post.generate()
        assert post.jit_stats.jit_samples == 0
