"""Shape tests for the paper's figures at reduced scale.

These assert the *qualitative* results the paper reports — who wins, in
which direction the trends run — on scaled-down runs so they stay fast.
The full-scale reproductions live in benchmarks/.
"""

import pytest

from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.jvm.bootimage import RVM_MAP_IMAGE_LABEL
from repro.system.experiment import run_case_study, run_overhead_matrix
from repro.workloads import by_name

SCALE = 0.06  # ~0.5 M - 9 M workload cycles per run


@pytest.fixture(scope="module")
def case_study():
    return run_case_study("ps", time_scale=0.25, limit=30)


class TestFigure1Shape:
    def test_viprof_resolves_jit_and_vm(self, case_study):
        table = case_study.viprof_table
        assert JIT_APP_IMAGE_LABEL in table
        assert RVM_MAP_IMAGE_LABEL in table
        assert "edu.unm.cs.oal.dacapo.javaPostScript" in table

    def test_oprofile_shows_anonymous_regions(self, case_study):
        table = case_study.oprofile_table
        assert "anon (range:0x" in table
        assert "RVM.code.image" in table
        assert "(no symbols)" in table
        assert JIT_APP_IMAGE_LABEL not in table

    def test_both_see_native_layer(self, case_study):
        assert "libc" in case_study.viprof_table
        assert "libc" in case_study.oprofile_table

    def test_figure1_vm_symbols_appear(self, case_study):
        # At least some of the exact Figure 1 VM-internal frames.
        hits = sum(
            name in case_study.viprof_table
            for name in (
                "com.ibm.jikesrvm.classloader.VM_NormalMethod",
                "com.ibm.jikesrvm.opt.VM_OptCompiledMethod.createCodePatchMaps",
                "org.mmtk",
                "com.ibm.jikesrvm.opt.VM_OptGenericGCMapIterator",
            )
        )
        assert hits >= 1

    def test_sample_volumes_comparable(self, case_study):
        v = case_study.viprof_run
        o = case_study.oprofile_run
        nv = v.daemon_stats.samples_logged
        no = o.daemon_stats.samples_logged
        assert abs(nv - no) / max(nv, no) < 0.15


class TestFigure2Shape:
    @pytest.fixture(scope="class")
    def matrix(self):
        suite = [by_name(n) for n in ("fop", "ps", "antlr")]
        return run_overhead_matrix(suite, time_scale=SCALE)

    def test_overhead_grows_with_frequency(self, matrix):
        for name in ("fop", "ps", "antlr"):
            s45 = matrix.cell(name, "viprof", 45_000).slowdown
            s450 = matrix.cell(name, "viprof", 450_000).slowdown
            assert s45 > s450, name

    def test_average_overhead_moderate_at_90k(self, matrix):
        avg_v = matrix.average_slowdown("viprof", 90_000)
        avg_o = matrix.average_slowdown("oprofile", 90_000)
        # ~5 % band at the paper's scale; scaled runs amortize less, so
        # allow up to ~15 %.
        assert 1.0 < avg_o < 1.15
        assert 1.0 < avg_v < 1.18
        # VIProf ≈ OProfile on average (paper: "negligible overhead to what
        # Oprofile already introduces").
        assert abs(avg_v - avg_o) < 0.05

    def test_viprof450_is_cheapest(self, matrix):
        for name in ("fop", "ps", "antlr"):
            s450 = matrix.cell(name, "viprof", 450_000).slowdown
            s90 = matrix.cell(name, "viprof", 90_000).slowdown
            assert s450 < s90

    def test_format_figure2_table(self, matrix):
        txt = matrix.format_figure2()
        assert "VIProf 45K" in txt and "Average" in txt


class TestFigure3Shape:
    def test_base_times_ordered_like_paper(self):
        from repro.system.api import base_run

        fop = base_run(by_name("fop"), time_scale=SCALE)
        hsqldb = base_run(by_name("hsqldb"), time_scale=SCALE)
        # hsqldb (43 s) runs ~13x longer than fop (3.2 s); scaled runs
        # preserve the ratio.
        assert hsqldb.seconds / fop.seconds == pytest.approx(
            43.0 / 3.2, rel=0.15
        )
