"""The guest-kill isolation matrix: every guest-scoped fault point ×
kill position, salvaged back without perturbing any sibling domain.

A guest kill is *not* a process crash: the hypervisor keeps time-slicing
the surviving domains, so the global sample timeline after the kill
diverges from the fault-free twin's (NMI samples come from the shared
CPU counters, and the dead guest's slices are redistributed).  The
isolation guarantees are therefore stated against the right twins:

* **pre-kill prefix** — every sample of *any* domain taken at or before
  the killed domain's last sample cycle is identical to the fault-free
  twin's (determinism up to the injected death);
* **salvage isolation** — resolving the whole fleet stream through the
  salvaged chain (killed domain quarantined, degraded mode) attributes
  every surviving domain's samples bit-for-bit identically to resolving
  that domain's own sub-session through a clean strict chain: the dead
  guest's quarantine never leaks into a sibling's resolution;
* **no invented attributions** — the killed domain's really-resolved
  multiset is contained in its fault-free twin's;
* **exact partition** — fleet counters partition across domains: the
  dispatch stage's hits equal the sum of inner-chain totals, per-domain
  totals match the per-domain sample files, and degraded losses are
  charged to the killed domain only.
"""

from collections import Counter

import pytest

from repro.faults import (
    ALL_GUEST_FAULT_POINT_NAMES,
    FaultPlan,
    arm,
)
from repro.metrics.fleet import per_domain_stats
from repro.pipeline import DirectorySource, xen_chain
from repro.pipeline.stages import UNRESOLVED_JIT
from repro.statcheck.analyzer import lint_session
from repro.statcheck.findings import Severity
from repro.workloads.fleet import fleet_workloads
from repro.xen.fleet import FleetSession, run_fleet

_FLEET_N = 5
_PERIOD = 20_000
_BASE_TIME = 0.12
_SELECTORS = ("first", "mid", "last")


def _run(session_dir) -> FleetSession:
    return run_fleet(
        fleet_workloads(_FLEET_N, base_time_s=_BASE_TIME),
        period=_PERIOD,
        session_dir=session_dir,
    )


def _key(ps, rs) -> tuple:
    raw = rs.raw
    return (
        raw.pc, raw.cycle, raw.task_id, raw.kernel_mode, raw.epoch,
        rs.image, rs.symbol, rs.offset,
    )


def _fleet_multisets(
    fs: FleetSession,
    quarantined=None,
    strict: bool = True,
    real_only: bool = False,
):
    """Per-domain resolution multisets of the whole fleet stream, plus
    the chain that produced them (for its counters)."""
    chain = fs.fleet_chain(quarantined, strict=strict)
    out = {did: Counter() for did in fs.domain_ids}
    for ps in fs.source():
        rs = chain.resolve(ps)
        if real_only and rs.symbol == UNRESOLVED_JIT:
            continue
        out[ps.domain_id][_key(ps, rs)] += 1
    return out, chain


def _domain_multiset(
    fs: FleetSession,
    domain_id: int,
    quarantined=(),
    strict: bool = True,
) -> Counter:
    """One domain's multiset from its own sub-session through a fresh,
    single-domain chain — the clean twin the fleet path must match."""
    chain = xen_chain(
        fs.result.hypervisor,
        {domain_id: fs.domain_chain(domain_id, quarantined, strict=strict)},
    )
    out: Counter = Counter()
    for ps in DirectorySource(fs.domain_dir(domain_id) / "samples"):
        out[_key(ps, chain.resolve(ps))] += 1
    return out


def _restrict(multiset: Counter, max_cycle: int) -> Counter:
    """The sub-multiset of samples taken at or before ``max_cycle``
    (key index 1 is the sample cycle)."""
    return Counter({k: n for k, n in multiset.items() if k[1] <= max_cycle})


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The fault-free fleet twin and its per-domain multisets."""
    fs = _run(tmp_path_factory.mktemp("fleet-baseline"))
    multisets, _chain = _fleet_multisets(fs)
    return {"fs": fs, "multisets": multisets}


@pytest.fixture(scope="module")
def hit_counts(tmp_path_factory):
    """Observe-mode twin: how often each guest fault point is reached."""
    with arm() as injector:
        _run(tmp_path_factory.mktemp("fleet-observe"))
    return dict(injector.hits)


def test_every_guest_fault_point_is_reached(hit_counts):
    # A guest point nobody fires would silently shrink the matrix.
    assert set(ALL_GUEST_FAULT_POINT_NAMES) <= set(hit_counts)
    for name in ALL_GUEST_FAULT_POINT_NAMES:
        assert hit_counts[name] >= len(_SELECTORS)


def test_fleet_counters_partition_exactly(baseline):
    """Fault-free sanity: the per-domain sample files partition the root
    stream, and the chain's counters partition across domains."""
    fs = baseline["fs"]
    per_file = {
        did: sum(
            1 for _ in DirectorySource(fs.domain_dir(did) / "samples")
        )
        for did in fs.domain_ids
    }
    assert per_file == dict(fs.result.buffer.per_domain)
    assert sum(per_file.values()) == len(fs.result.buffer)

    _multisets, chain = _fleet_multisets(fs)
    stats = chain.stats_dict()
    by_stage = {e["stage"]: e for e in stats["stages"]}
    inner = per_domain_stats(stats)
    assert set(inner) == set(fs.domain_ids)
    assert stats["total_samples"] == len(fs.result.buffer)
    assert (
        by_stage["hypervisor"]["hits"] + by_stage["domain-dispatch"]["hits"]
        == stats["total_samples"]
    )
    assert (
        sum(s["total_samples"] for s in inner.values())
        == by_stage["domain-dispatch"]["hits"]
    )
    xen = fs.result.hypervisor
    for did in fs.domain_ids:
        dispatched = sum(
            1
            for s in fs.result.buffer.samples
            if s.domain_id == did and not xen.is_xen_address(s.raw.pc)
        )
        assert inner[did]["total_samples"] == dispatched


@pytest.mark.parametrize("selector", _SELECTORS)
@pytest.mark.parametrize("point", ALL_GUEST_FAULT_POINT_NAMES)
def test_guest_kill_isolation(point, selector, baseline, hit_counts, tmp_path):
    total = hit_counts[point]
    hit = {"first": 1, "mid": (total + 1) // 2, "last": total}[selector]

    with arm(FaultPlan(point, hit=hit, seed=5)) as injector:
        fs = _run(tmp_path / "fleet")
    assert injector.fired is not None
    assert injector.fired.point == point and injector.fired.hit == hit

    # Exactly one guest dies; the engine finishes the siblings.
    assert len(fs.killed_domains) == 1
    killed = fs.killed_domains[0]
    assert set(fs.damaged_domains) <= {killed}
    survivors = [d for d in fs.domain_ids if d != killed]

    # Salvage the dead guest's own sub-session only.
    manifest = fs.salvage_domain(killed)
    quarantined = tuple(manifest.quarantined_epochs)
    if fs.damaged_domains:
        # A torn map must have been quarantined, not silently parsed.
        assert manifest.damaged and quarantined

    salvaged, chain = _fleet_multisets(
        fs, quarantined={killed: quarantined}, strict=False
    )

    # --- salvage isolation: siblings resolve bit-for-bit as if the dead
    # guest never existed --------------------------------------------
    for did in survivors:
        clean = _domain_multiset(fs, did)
        assert salvaged[did] == clean, (
            f"{point}@{hit}: salvaging dom{killed} perturbed dom{did}"
        )

    # --- pre-kill prefix: identical to the fault-free twin up to the
    # killed domain's last sample -------------------------------------
    kill_cycle = max(
        (
            s.raw.cycle
            for s in fs.result.buffer.samples
            if s.domain_id == killed
        ),
        default=0,
    )
    for did in survivors:
        assert _restrict(salvaged[did], kill_cycle) == _restrict(
            baseline["multisets"][did], kill_cycle
        ), f"{point}@{hit}: dom{did} diverged before the kill"

    # --- the killed domain never gains an attribution its fault-free
    # twin did not produce --------------------------------------------
    recovered, _ = _fleet_multisets(
        fs, quarantined={killed: quarantined}, strict=False, real_only=True
    )
    assert not recovered[killed] - baseline["multisets"][killed], (
        f"{point}@{hit}: recovered dom{killed} invented attributions"
    )

    # --- counters partition exactly, losses charged to the dead guest
    stats = chain.stats_dict()
    by_stage = {e["stage"]: e for e in stats["stages"]}
    inner = per_domain_stats(stats)
    assert stats["total_samples"] == len(fs.result.buffer)
    assert (
        sum(s["total_samples"] for s in inner.values())
        == by_stage["domain-dispatch"]["hits"]
    )
    xen = fs.result.hypervisor
    for did in fs.domain_ids:
        assert sum(salvaged[did].values()) == fs.result.buffer.per_domain.get(
            did, 0
        )
        dispatched = sum(
            1
            for s in fs.result.buffer.samples
            if s.domain_id == did and not xen.is_xen_address(s.raw.pc)
        )
        assert inner[did]["total_samples"] == dispatched
    blocked_total = 0
    for did, sub in inner.items():
        jit = next(
            e for e in sub["stages"] if e["stage"] == "jit-epoch"
        )
        detail = jit["detail"]
        assert detail["jit_samples"] == (
            detail["resolved_in_own_epoch"]
            + detail["resolved_in_earlier_epoch"]
            + detail["unresolved"]
            + detail["blocked_at_quarantine"]
        )
        blocked = detail["blocked_at_quarantine"]
        blocked_total += blocked
        if did != killed:
            assert blocked == 0, (
                f"{point}@{hit}: degraded losses charged to healthy "
                f"dom{did}"
            )
    degraded = by_stage["domain-dispatch"].get("degraded")
    assert degraded is not None
    assert degraded["blocked_at_quarantine"] == blocked_total

    # --- and the static analyzer agrees the dead guest's sub-session
    # is accounted for ------------------------------------------------
    report = lint_session(fs.domain_dir(killed))
    assert report.exit_code(fail_on=Severity.WARNING) == 0, (
        report.format_text()
    )
