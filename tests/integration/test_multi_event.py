"""End-to-end run with more than the paper's two events, exercising the
counter bank's multi-counter paths, per-event sample files, and report
columns."""

import pytest

from repro.oprofile.opcontrol import EventSpec, OprofileConfig
from repro.profiling.export import report_to_csv, report_to_xml
from repro.system.engine import EngineConfig, ProfilerMode, SystemEngine
from tests.conftest import make_tiny_workload


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    cfg = OprofileConfig(
        events=(
            EventSpec("GLOBAL_POWER_EVENTS", 45_000),
            EventSpec("BSQ_CACHE_REFERENCE", 2_000),
            EventSpec("INSTR_RETIRED", 60_000),
            EventSpec("BRANCH_RETIRED", 30_000),
        )
    )
    engine = SystemEngine(
        make_tiny_workload(base_time_s=0.4),
        EngineConfig(
            mode=ProfilerMode.VIPROF,
            profile_config=cfg,
            session_dir=tmp_path_factory.mktemp("multi"),
            noise=False,
        ),
    )
    return engine.run()


class TestFourEventProfile:
    def test_all_event_files_written(self, run):
        files = {p.name for p in run.sample_dir.glob("*.samples")}
        assert files == {
            "GLOBAL_POWER_EVENTS.samples",
            "BSQ_CACHE_REFERENCE.samples",
            "INSTR_RETIRED.samples",
            "BRANCH_RETIRED.samples",
        }

    def test_report_has_four_columns(self, run):
        report = run.viprof_report().report
        assert len(report.events) == 4
        assert report.events[0] == "GLOBAL_POWER_EVENTS"
        for ev in report.events:
            assert report.totals[ev] > 0

    def test_instruction_samples_proportional_to_time(self, run):
        """INSTR_RETIRED at period 60K vs cycles at 45K: instructions
        accrue slower than cycles (CPI > 1), so instruction samples are
        fewer — but within the same order of magnitude."""
        report = run.viprof_report().report
        t = report.totals["GLOBAL_POWER_EVENTS"]
        i = report.totals["INSTR_RETIRED"]
        assert 0.1 < i / t < 1.5

    def test_exports_cover_all_events(self, run):
        report = run.viprof_report().report
        xml = report_to_xml(report)
        csv_text = report_to_csv(report)
        for ev in report.events:
            assert ev in xml
            assert f"{ev}_samples" in csv_text
