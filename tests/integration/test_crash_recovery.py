"""The crash matrix: every registered fault point, killed early / mid /
late, must salvage back to a report whose resolved samples are a subset
of the fault-free twin's — with the losses accounted, never misattributed.

The simulated system is deterministic under a fixed workload + seed, so a
crashed run is byte-identical to its fault-free twin right up to the
injected death.  That turns the headline guarantee into three mechanical
checks per matrix cell:

* every salvaged sample file is a byte *prefix* of the twin's file;
* every surviving (non-quarantined) code map is byte-identical to the
  twin's map for that epoch;
* the degraded report's really-resolved sample multiset is contained in
  the twin's, and the JIT stage's counters exactly partition its samples
  into resolved / unresolved / blocked-at-quarantine.
"""

from collections import Counter
from pathlib import Path

import pytest

from repro.errors import InjectedFault
from repro.faults import ALL_FAULT_POINT_NAMES, FaultPlan, arm
from repro.oprofile.opcontrol import OprofileConfig
from repro.pipeline.stages import UNRESOLVED_JIT
from repro.profiling.record_codec import probe_sample_file
from repro.statcheck.analyzer import lint_session
from repro.statcheck.findings import Severity
from repro.system.engine import EngineConfig, ProfilerMode, SystemEngine
from repro.viprof.salvage import (
    ACTION_QUARANTINED,
    ACTION_TRUNCATED,
    salvage_session,
)
from tests.conftest import make_tiny_workload

#: Small write buffer: frequent mid-run spills, so sample bytes are on
#: disk (and torn by the writer.spill effect) when the crash lands.
_BUFFER = 256
_PERIOD = 20_000
_SELECTORS = ("first", "mid", "last")


def _config(session_dir: Path) -> EngineConfig:
    return EngineConfig(
        mode=ProfilerMode.VIPROF,
        profile_config=OprofileConfig.paper_config(_PERIOD),
        session_dir=session_dir,
        seed=7,
        noise=False,
        viprof_write_buffer_bytes=_BUFFER,
    )


def _run_engine(session_dir: Path) -> SystemEngine:
    engine = SystemEngine(
        make_tiny_workload(base_time_s=0.25), _config(session_dir)
    )
    engine.run()
    return engine


def _resolution_multiset(post, real_only: bool) -> Counter:
    """Multiset of fully-identified resolutions.  ``real_only`` drops the
    ``(unresolved jit)`` rows — those are the *accounted* losses, not
    attributions."""
    out: Counter = Counter()
    for rs in post.resolved_samples():
        if real_only and rs.symbol == UNRESOLVED_JIT:
            continue
        raw = rs.raw
        out[(
            raw.pc, raw.cycle, raw.task_id, raw.kernel_mode, raw.epoch,
            rs.image, rs.symbol, rs.offset,
        )] += 1
    return out


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The fault-free twin: engine + its strict report's multiset."""
    session_dir = tmp_path_factory.mktemp("crash-baseline")
    engine = _run_engine(session_dir)
    post = engine.viprof.report(engine.boot.rvm_map)
    post.generate()
    return {
        "dir": session_dir,
        "multiset": _resolution_multiset(post, real_only=False),
    }


@pytest.fixture(scope="module")
def hit_counts(tmp_path_factory):
    """Observe-mode twin: how often each fault point fires in one run."""
    with arm() as injector:
        _run_engine(tmp_path_factory.mktemp("crash-observe"))
    return dict(injector.hits)


def test_every_fault_point_is_reached(hit_counts):
    # A fault point nobody fires is dead coverage: the matrix below
    # would silently shrink.
    assert set(hit_counts) == set(ALL_FAULT_POINT_NAMES)
    assert all(n >= 1 for n in hit_counts.values())


@pytest.mark.parametrize("selector", _SELECTORS)
@pytest.mark.parametrize("point", ALL_FAULT_POINT_NAMES)
def test_kill_and_recover(point, selector, baseline, hit_counts, tmp_path):
    total = hit_counts[point]
    hit = {"first": 1, "mid": (total + 1) // 2, "last": total}[selector]
    session_dir = tmp_path / "crashed"

    engine = SystemEngine(
        make_tiny_workload(base_time_s=0.25), _config(session_dir)
    )
    with arm(FaultPlan(point, hit=hit, seed=5)):
        with pytest.raises(InjectedFault) as exc:
            engine.run()
    assert exc.value.point == point and exc.value.hit == hit

    pre_sizes = {
        p.name: p.stat().st_size
        for p in (session_dir / "samples").glob("*.samples")
    }
    manifest = engine.viprof.salvage()

    # --- salvage accounting is exact ---------------------------------
    for entry in manifest.sample_files:
        path = session_dir / entry.path
        if entry.action == ACTION_QUARANTINED:
            assert entry.records_kept == 0
            continue
        probe = probe_sample_file(path)
        assert probe.n_records == entry.records_kept
        assert probe.trailing_bytes == 0
        if entry.action == ACTION_TRUNCATED:
            assert (
                pre_sizes[path.name] - path.stat().st_size
                == entry.bytes_dropped > 0
            )

    # --- survivors are byte-prefixes of the fault-free twin ----------
    for sample_file in sorted((session_dir / "samples").glob("*.samples")):
        salvaged = sample_file.read_bytes()
        twin = (baseline["dir"] / "samples" / sample_file.name).read_bytes()
        assert twin[: len(salvaged)] == salvaged
    for map_file in sorted((session_dir / "jit-maps").glob("jit-map.*")):
        twin = baseline["dir"] / "jit-maps" / map_file.name
        assert map_file.read_bytes() == twin.read_bytes()

    # --- the degraded report never invents an attribution ------------
    post = engine.viprof.recovered_report(engine.boot.rvm_map)
    post.generate()
    recovered = _resolution_multiset(post, real_only=True)
    assert not recovered - baseline["multiset"], (
        f"{point}@{hit}: recovered report resolved samples the "
        "fault-free twin never produced"
    )

    stats = post.jit_stats
    assert stats.jit_samples == (
        stats.resolved + stats.unresolved + stats.blocked_at_quarantine
    )
    chain_stats = post.chain.stats_dict()
    assert chain_stats["degraded"] is True
    jit_entry = next(
        e for e in chain_stats["stages"] if e["stage"] == "jit-epoch"
    )
    assert jit_entry["degraded"] == {
        "blocked_at_quarantine": stats.blocked_at_quarantine
    }

    # --- and the static analyzer agrees the losses are accounted -----
    report = lint_session(session_dir)
    assert report.exit_code(fail_on=Severity.WARNING) == 0, (
        report.format_text()
    )


def test_salvage_refuses_to_run_twice(tmp_path):
    engine = SystemEngine(
        make_tiny_workload(base_time_s=0.25), _config(tmp_path / "s")
    )
    with arm(FaultPlan("daemon.drain-chunk", hit=1)):
        with pytest.raises(InjectedFault):
            engine.run()
    engine.viprof.salvage()
    from repro.errors import ProfilerError

    with pytest.raises(ProfilerError, match="salvage"):
        salvage_session(tmp_path / "s")


def test_dry_run_leaves_the_wreck_untouched(tmp_path):
    session_dir = tmp_path / "s"
    engine = SystemEngine(
        make_tiny_workload(base_time_s=0.25), _config(session_dir)
    )
    with arm(FaultPlan("writer.spill", hit=2, seed=5)):
        with pytest.raises(InjectedFault):
            engine.run()
    before = {
        p: p.read_bytes()
        for p in session_dir.rglob("*") if p.is_file()
    }
    manifest = engine.viprof.salvage(dry_run=True)
    after = {
        p: p.read_bytes()
        for p in session_dir.rglob("*") if p.is_file()
    }
    assert before == after
    assert manifest.damaged
    assert not (session_dir / "salvage.json").exists()
