"""Accuracy validation: sampled profiles vs the simulator's ground truth.

This is the quantitative version of the paper's Figure 1 claim — VIProf's
per-symbol sample shares must converge to the true cycle shares, including
for JIT code that stock OProfile cannot attribute at all.
"""

import pytest

from repro import viprof_profile, oprofile_profile
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.profiling.model import Layer
from tests.conftest import make_tiny_workload


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    wl_v = make_tiny_workload(base_time_s=1.5)
    wl_o = make_tiny_workload(base_time_s=1.5)
    v = viprof_profile(
        wl_v, period=5_000,  # dense sampling for tight statistics
        session_dir=tmp_path_factory.mktemp("v"), noise=False,
    )
    o = oprofile_profile(
        wl_o, period=5_000,
        session_dir=tmp_path_factory.mktemp("o"), noise=False,
    )
    return v, o


def sampleable_share(run, cycles: int) -> float:
    """True share of the cycles a sampler can actually see: NMI-handler
    cycles run with sampling masked, so they never produce samples and
    every other share inflates proportionally."""
    total = run.ledger.total_cycles - run.cpu_stats.nmi_handler_cycles
    return cycles / total


class TestViprofAccuracy:
    def test_resolution_rate_high(self, runs):
        v, _ = runs
        stats = v.viprof_report().jit_stats
        assert stats.jit_samples > 100
        assert stats.resolution_rate > 0.98

    def test_hot_jit_methods_match_ground_truth(self, runs):
        """For every method with >2% true cycle share, the VIProf sample
        share must be within 2 percentage points (per-run sampling error at
        this density)."""
        v, _ = runs
        report = v.viprof_report().report
        truth = v.ledger
        checked = 0
        for (image, symbol), entry in truth.top_symbols(30):
            if image != JIT_APP_IMAGE_LABEL:
                continue
            if truth.cycle_share((image, symbol)) < 0.02:
                continue
            true_share = sampleable_share(v, entry.cycles)
            row = report.row_for(image, symbol)
            assert row is not None, f"missing hot method {symbol}"
            sampled = report.percent(row, "GLOBAL_POWER_EVENTS") / 100.0
            assert sampled == pytest.approx(true_share, abs=0.025), symbol
            checked += 1
        assert checked >= 2

    def test_layer_shares_match_ground_truth(self, runs):
        v, _ = runs
        report = v.viprof_report().report
        truth = v.ledger
        # JIT layer share via the report's image share.
        sampled_jit = report.image_share(JIT_APP_IMAGE_LABEL)
        true_jit = sampleable_share(v, truth.layer_cycles(Layer.APP_JIT))
        assert sampled_jit == pytest.approx(true_jit, abs=0.04)

    def test_miss_shares_tracked(self, runs):
        v, _ = runs
        report = v.viprof_report().report
        truth = v.ledger
        hot = max(
            (k for k in truth.by_symbol if k[0] == JIT_APP_IMAGE_LABEL),
            key=lambda k: truth.by_symbol[k].l2_misses,
        )
        row = report.row_for(*hot)
        assert row is not None
        sampled = (
            row.count("BSQ_CACHE_REFERENCE")
            / max(1, report.totals["BSQ_CACHE_REFERENCE"])
        )
        assert sampled == pytest.approx(truth.miss_share(hot), abs=0.08)


class TestOprofileBlindness:
    def test_oprofile_sees_no_jit_methods(self, runs):
        _, o = runs
        report = o.oprofile_report()
        assert not any(r.image == JIT_APP_IMAGE_LABEL for r in report.rows)

    def test_oprofile_anon_share_matches_true_jit_share(self, runs):
        """Stock OProfile puts the samples in anonymous ranges — the volume
        is right, the attribution is not."""
        _, o = runs
        report = o.oprofile_report()
        anon_share = sum(
            report.percent(r, "GLOBAL_POWER_EVENTS") / 100.0
            for r in report.rows
            if r.image.startswith("anon (range:")
        )
        true_jit = sampleable_share(o, o.ledger.layer_cycles(Layer.APP_JIT))
        assert anon_share == pytest.approx(true_jit, abs=0.05)

    def test_boot_image_unsymbolized_under_oprofile(self, runs):
        _, o = runs
        report = o.oprofile_report()
        rvm_rows = [r for r in report.rows if r.image == "RVM.code.image"]
        assert rvm_rows
        assert all(r.symbol == "(no symbols)" for r in rvm_rows)
