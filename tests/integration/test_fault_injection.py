"""Fault injection: corrupted or missing artifacts must fail loudly (or
degrade gracefully where the paper's design says so), never misattribute
silently."""

import pytest

from repro import viprof_profile
from repro.errors import CodeMapError, ProfilerError, SampleFormatError
from repro.viprof.codemap import CodeMapIndex
from tests.conftest import make_tiny_workload


@pytest.fixture()
def vrun(tmp_path):
    return viprof_profile(
        make_tiny_workload(base_time_s=0.25), period=20_000,
        session_dir=tmp_path, noise=False,
    )


class TestCorruptedCodeMaps:
    def test_truncated_map_file_rejected(self, vrun, tmp_path):
        maps = sorted((tmp_path / "jit-maps").iterdir())
        victim = maps[len(maps) // 2]
        content = victim.read_text().splitlines()
        victim.write_text(content[0] + "\nGARBAGE LINE\n")
        with pytest.raises(CodeMapError, match="malformed"):
            vrun.viprof_report()

    def test_header_tampering_rejected(self, vrun, tmp_path):
        maps = sorted((tmp_path / "jit-maps").iterdir())
        victim = maps[0]
        victim.write_text("# not a map header\n")
        with pytest.raises(CodeMapError, match="bad header"):
            vrun.viprof_report()

    def test_renamed_epoch_mismatch_rejected(self, vrun, tmp_path):
        maps = sorted((tmp_path / "jit-maps").iterdir())
        if len(maps) < 2:
            pytest.skip("run produced too few maps")
        maps[0].rename(tmp_path / "jit-maps" / "jit-map.99999")
        with pytest.raises(CodeMapError, match="filename epoch"):
            vrun.viprof_report()

    def test_deleted_middle_map_degrades_not_crashes(self, vrun, tmp_path):
        """Losing one epoch's map costs attribution for methods only that
        map knew; backward traversal still resolves everything older."""
        maps = sorted((tmp_path / "jit-maps").iterdir())
        if len(maps) < 3:
            pytest.skip("run produced too few maps")
        maps[len(maps) // 2].unlink()
        vr = vrun.viprof_report()
        stats = vr.jit_stats
        assert stats.jit_samples > 0
        # Still mostly resolvable; definitely no exception.
        assert stats.resolution_rate > 0.5

    def test_all_maps_deleted_reports_unresolved(self, vrun, tmp_path):
        for p in (tmp_path / "jit-maps").iterdir():
            p.unlink()
        vr = vrun.viprof_report()
        assert vr.jit_stats.resolution_rate == 0.0
        from repro.viprof.postprocess import UNRESOLVED_JIT

        assert vr.report.row_for("JIT.App", UNRESOLVED_JIT) is not None


class TestCorruptedSampleFiles:
    def test_torn_sample_file_rejected(self, vrun, tmp_path):
        f = next((tmp_path / "samples").glob("*.samples"))
        f.write_bytes(f.read_bytes()[:-5])
        with pytest.raises(SampleFormatError, match="torn"):
            vrun.viprof_report()

    def test_foreign_file_in_sample_dir_rejected(self, vrun, tmp_path):
        (tmp_path / "samples" / "stray.samples").write_bytes(b"not samples")
        with pytest.raises(SampleFormatError):
            vrun.viprof_report()

    def test_empty_sample_dir_rejected(self, vrun, tmp_path):
        for p in (tmp_path / "samples").glob("*.samples"):
            p.unlink()
        with pytest.raises(ProfilerError, match="no sample files"):
            vrun.viprof_report()


class TestResolutionEdgeCases:
    def test_sample_with_future_epoch_clamped(self, vrun, tmp_path):
        """A sample stamped with an epoch newer than any map (e.g. lost
        final flush) resolves from the newest available map backwards."""
        idx = CodeMapIndex.load_dir(tmp_path / "jit-maps")
        # Use the newest epoch whose map actually has records (the final
        # flush may be empty when nothing compiled after the last GC).
        some_epoch = next(
            e for e in reversed(idx.epochs) if len(idx.map_for(e))
        )
        rec = idx.map_for(some_epoch).records[0]
        hit = idx.resolve(idx.epochs[-1] + 1000, rec.address)
        assert hit is not None and hit[0].name == rec.name

    def test_codemap_index_is_reusable(self, vrun):
        """Post-processing twice gives identical results (no hidden state
        consumed by the first pass)."""
        a = vrun.viprof_report().report.format_table()
        b = vrun.viprof_report().report.format_table()
        assert a == b
