"""Determinism: identical configuration => bit-identical results; seed and
configuration changes => different (but valid) results."""

from repro import base_run, viprof_profile
from repro.profiling.samplefile import SampleFileReader
from tests.conftest import make_tiny_workload


def fingerprint(result):
    return (
        result.wall_cycles,
        result.workload_cycles,
        result.ledger.total_cycles,
        result.ledger.total_misses,
        tuple(sorted(
            (k, e.cycles) for k, e in result.ledger.by_symbol.items()
        )),
    )


class TestDeterminism:
    def test_base_runs_identical(self):
        a = base_run(make_tiny_workload(), seed=11)
        b = base_run(make_tiny_workload(), seed=11)
        assert fingerprint(a) == fingerprint(b)

    def test_viprof_runs_identical_including_samples(self, tmp_path):
        a = viprof_profile(
            make_tiny_workload(), seed=11, session_dir=tmp_path / "a"
        )
        b = viprof_profile(
            make_tiny_workload(), seed=11, session_dir=tmp_path / "b"
        )
        assert fingerprint(a) == fingerprint(b)
        for f in sorted((tmp_path / "a" / "samples").glob("*.samples")):
            sa = list(SampleFileReader(f))
            sb = list(SampleFileReader(tmp_path / "b" / "samples" / f.name))
            assert sa == sb

    def test_code_maps_identical(self, tmp_path):
        viprof_profile(make_tiny_workload(), seed=11, session_dir=tmp_path / "a")
        viprof_profile(make_tiny_workload(), seed=11, session_dir=tmp_path / "b")
        maps_a = sorted((tmp_path / "a" / "jit-maps").iterdir())
        maps_b = sorted((tmp_path / "b" / "jit-maps").iterdir())
        assert [p.name for p in maps_a] == [p.name for p in maps_b]
        for pa, pb in zip(maps_a, maps_b):
            assert pa.read_text() == pb.read_text()

    def test_different_seed_changes_run(self):
        a = base_run(make_tiny_workload(), seed=11)
        b = base_run(make_tiny_workload(), seed=12)
        assert fingerprint(a) != fingerprint(b)

    def test_reports_identical(self, tmp_path):
        a = viprof_profile(
            make_tiny_workload(), seed=11, session_dir=tmp_path / "a"
        )
        b = viprof_profile(
            make_tiny_workload(), seed=11, session_dir=tmp_path / "b"
        )
        ta = a.viprof_report().report.format_table()
        tb = b.viprof_report().report.format_table()
        assert ta == tb
