"""Conservation and consistency invariants of the full-system engine.

Every cycle the engine executes must be accounted exactly once in the
ground-truth ledger (plus idle and NMI-handler time tracked separately);
samples written to disk must equal samples captured minus buffer losses.
These invariants protect the overhead measurements — a leak in either
direction would silently bias Figure 2.
"""

import pytest

from repro.oprofile.opcontrol import OprofileConfig
from repro.profiling.samplefile import SampleFileReader
from repro.system.engine import EngineConfig, ProfilerMode, SystemEngine
from tests.conftest import make_tiny_workload


def run(mode=ProfilerMode.NONE, tmp_path=None, **kw):
    cfg_kw = dict(mode=mode, seed=9, noise=False)
    if mode is not ProfilerMode.NONE:
        cfg_kw["profile_config"] = kw.pop(
            "profile_config", OprofileConfig.paper_config(45_000)
        )
        cfg_kw["session_dir"] = tmp_path
    cfg_kw.update(kw)
    return SystemEngine(
        make_tiny_workload(base_time_s=0.2), EngineConfig(**cfg_kw)
    ).run()


class TestCycleConservation:
    def test_base_run_wall_equals_ledger_plus_idle(self):
        r = run()
        assert (
            r.ledger.total_cycles + r.ledger.idle_cycles == r.wall_cycles
        )

    def test_profiled_run_wall_equals_ledger_plus_idle(self, tmp_path):
        r = run(ProfilerMode.VIPROF, tmp_path)
        # NMI-handler cycles are recorded in the ledger under the kernel's
        # oprofile_nmi_handler symbol, so the identity still holds.
        assert (
            r.ledger.total_cycles + r.ledger.idle_cycles == r.wall_cycles
        )

    def test_cpu_stats_agree_with_clock(self, tmp_path):
        r = run(ProfilerMode.OPROFILE, tmp_path)
        assert (
            r.cpu_stats.total_cycles + r.ledger.idle_cycles == r.wall_cycles
        )

    def test_nmi_cycles_attributed_to_handler_symbol(self, tmp_path):
        r = run(ProfilerMode.OPROFILE, tmp_path)
        entry = r.ledger.by_symbol[("vmlinux", "oprofile_nmi_handler")]
        assert entry.cycles == r.cpu_stats.nmi_handler_cycles


class TestSampleConservation:
    def test_samples_on_disk_equal_captured_minus_lost(self, tmp_path):
        r = run(ProfilerMode.VIPROF, tmp_path)
        on_disk = sum(
            len(SampleFileReader(p))
            for p in (tmp_path / "samples").glob("*.samples")
        )
        assert on_disk == r.daemon_stats.samples_logged
        assert on_disk > 0
        assert r.buffer_lost == 0  # default buffer is ample

    def test_buffer_overflow_accounted(self, tmp_path):
        """With a pathologically small buffer and a slow daemon, losses
        occur, are counted, and everything downstream still works."""
        from repro.oprofile.opcontrol import EventSpec

        cfg = OprofileConfig(
            events=(EventSpec("GLOBAL_POWER_EVENTS", 3_000),),
            buffer_capacity=64,
            daemon_period=3_000_000,  # daemon sleeps through the run
        )
        r = run(ProfilerMode.OPROFILE, tmp_path, profile_config=cfg)
        assert r.buffer_lost > 0
        on_disk = sum(
            len(SampleFileReader(p))
            for p in (tmp_path / "samples").glob("*.samples")
        )
        assert on_disk == r.daemon_stats.samples_logged
        report = r.oprofile_report()
        assert report.totals["GLOBAL_POWER_EVENTS"] == on_disk


class TestDetailedCacheMode:
    def test_detailed_cache_run_works(self):
        r = run(detailed_cache=True)
        assert r.ledger.total_misses > 0

    def test_detailed_and_statistical_same_regime(self):
        detailed = run(detailed_cache=True)
        statistical = run(detailed_cache=False)
        # Same workload, same budget: total misses agree within a factor.
        ratio = detailed.ledger.total_misses / max(
            1, statistical.ledger.total_misses
        )
        assert 0.2 < ratio < 5.0
