"""Unit tests for workload definition and scheduling."""

from random import Random

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import SIM_HZ, Workload, by_name, paper_suite
from tests.conftest import make_tiny_methods, make_tiny_workload


class TestWorkloadValidation:
    def test_requires_methods(self):
        with pytest.raises(WorkloadError, match="no methods"):
            Workload(name="x", base_time_s=1.0, methods=[])

    def test_bad_survival_rate(self):
        with pytest.raises(WorkloadError):
            make_tiny_workload(survival_rate=1.5)

    def test_bad_burst(self):
        with pytest.raises(WorkloadError):
            make_tiny_workload(burst=(10, 5))

    def test_fractions_leave_app_time(self):
        with pytest.raises(WorkloadError):
            make_tiny_workload(javalib_fraction=0.5, native_fraction=0.5)

    def test_method_indices_assigned(self):
        wl = make_tiny_workload()
        assert [m.index for m in wl.methods] == list(range(len(wl.methods)))


class TestBudget:
    def test_budget_scales_with_base_time(self):
        wl = make_tiny_workload(base_time_s=2.0)
        assert wl.budget_cycles() == int(2.0 * SIM_HZ)
        assert wl.budget_cycles(0.5) == int(1.0 * SIM_HZ)

    def test_bad_time_scale(self):
        with pytest.raises(WorkloadError):
            make_tiny_workload().budget_cycles(0)


class TestSchedule:
    def test_schedule_yields_valid_pairs(self):
        wl = make_tiny_workload()
        rng = Random(1)
        sched = wl.schedule(rng)
        for _ in range(500):
            idx, burst = next(sched)
            assert 0 <= idx < len(wl.methods)
            assert wl.burst[0] <= burst <= wl.burst[1]

    def test_schedule_deterministic_for_seeded_rng(self):
        wl = make_tiny_workload()
        a = [next(wl.schedule(Random(5))) for _ in range(1)]
        s1 = wl.schedule(Random(5))
        s2 = wl.schedule(Random(5))
        assert [next(s1) for _ in range(300)] == [next(s2) for _ in range(300)]

    def test_hot_methods_scheduled_more(self):
        wl = make_tiny_workload(n=6)
        counts = [0] * 6
        sched = wl.schedule(Random(3))
        for _ in range(4000):
            idx, _ = next(sched)
            counts[idx] += 1
        # Method 0 has the largest weight.
        assert counts[0] == max(counts)

    def test_phases_shift_the_hot_set(self):
        wl = make_tiny_workload(n=6, phases=2)
        sched = wl.schedule(Random(3))
        first = [next(sched)[0] for _ in range(400)]
        second = [next(sched)[0] for _ in range(400)]
        # Phase 1 prefers the first half of the population, phase 2 the
        # second half.
        assert sum(1 for i in first if i < 3) > sum(1 for i in second if i < 3)


class TestRegistry:
    def test_by_name_known(self):
        wl = by_name("ps")
        assert wl.name == "ps"

    def test_by_name_unknown(self):
        with pytest.raises(WorkloadError, match="unknown benchmark"):
            by_name("quake3")

    def test_paper_suite_order(self):
        names = [wl.name for wl in paper_suite()]
        assert names == [
            "pseudojbb", "jvm98", "antlr", "bloat", "fop",
            "hsqldb", "pmd", "xalan", "ps",
        ]

    def test_figure3_base_times(self):
        """The Figure 3 values the OCR preserves unambiguously."""
        expected = {
            "pseudojbb": 31.0, "jvm98": 5.74, "antlr": 8.7, "bloat": 28.5,
            "fop": 3.2, "hsqldb": 43.0, "pmd": 16.3,
        }
        for name, t in expected.items():
            assert by_name(name).base_time_s == pytest.approx(t)
