"""Unit tests for the synthetic workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.synthetic import SyntheticSpec, make_methods


def spec(**kw):
    defaults = dict(package="test.pkg", n_methods=30, seed=5)
    defaults.update(kw)
    return SyntheticSpec(**defaults)


class TestSpecValidation:
    def test_bad_n_methods(self):
        with pytest.raises(WorkloadError):
            spec(n_methods=0)

    def test_bad_zipf(self):
        with pytest.raises(WorkloadError):
            spec(zipf_s=0)

    def test_bad_bytecode_range(self):
        with pytest.raises(WorkloadError):
            spec(bytecode_range=(100, 50))


class TestMakeMethods:
    def test_population_size(self):
        assert len(make_methods(spec())) == 30

    def test_deterministic(self):
        a = make_methods(spec())
        b = make_methods(spec())
        assert [m.full_name for m in a] == [m.full_name for m in b]
        assert [m.bytecode_size for m in a] == [m.bytecode_size for m in b]
        assert [m.weight for m in a] == [m.weight for m in b]

    def test_names_unique_and_packaged(self):
        methods = make_methods(spec())
        names = [m.full_name for m in methods]
        assert len(set(names)) == len(names)
        assert all(n.startswith("test.pkg.") for n in names)

    def test_pinned_names_first(self):
        s = spec(pinned_names=("my.app.Main.run", "my.app.Main.helper"))
        methods = make_methods(s)
        assert methods[0].full_name == "my.app.Main.run"
        assert methods[1].full_name == "my.app.Main.helper"

    def test_bytecode_sizes_within_range(self):
        s = spec(bytecode_range=(50, 500))
        for m in make_methods(s):
            assert 50 <= m.bytecode_size <= 500

    def test_zipf_weights_skewed(self):
        methods = make_methods(spec(n_methods=100, zipf_s=1.2))
        weights = sorted((m.weight for m in methods), reverse=True)
        assert weights[0] / weights[-1] > 50

    def test_working_sets_disjoint(self):
        methods = make_methods(spec())
        spans = sorted(
            (m.working_set.base, m.working_set.base + m.working_set.size)
            for m in methods
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_data_bytes_budget_respected(self):
        s = spec(data_bytes=8 * 1024 * 1024, n_methods=20)
        total = sum(m.working_set.size for m in make_methods(s))
        # Per-method floor of 4 KB can push slightly over; within 2x.
        assert total <= 2 * s.data_bytes

    def test_callees_valid_indices(self):
        methods = make_methods(spec(fanout=3.0))
        n = len(methods)
        for i, m in enumerate(methods):
            for c in m.callees:
                assert 0 <= c < n and c != i


class TestBenchmarkFactories:
    def test_all_benchmarks_instantiate(self):
        from repro.workloads import by_name

        for name in (
            "pseudojbb", "jvm98", "antlr", "bloat", "fop", "hsqldb",
            "pmd", "xalan", "ps", "compress", "jess", "db", "javac",
            "mpegaudio", "mtrt", "jack",
        ):
            wl = by_name(name)
            assert wl.methods
            assert wl.base_time_s > 0

    def test_ps_has_figure1_frame(self):
        from repro.workloads import by_name

        wl = by_name("ps")
        names = {m.full_name for m in wl.methods}
        assert (
            "edu.unm.cs.oal.dacapo.javaPostScript.red.scanner.Scanner.parseLine"
            in names
        )

    def test_antlr_is_compile_heavy(self):
        from repro.workloads import by_name

        antlr, pseudojbb = by_name("antlr"), by_name("pseudojbb")
        # Methods per second of runtime — antlr must dwarf pseudojbb.
        antlr_density = len(antlr.methods) / antlr.base_time_s
        jbb_density = len(pseudojbb.methods) / pseudojbb.base_time_s
        assert antlr_density > 5 * jbb_density
