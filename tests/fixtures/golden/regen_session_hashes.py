#!/usr/bin/env python
"""Regenerate ``session_hashes.json`` — the golden per-file digests of two
seeded, deterministic profiling sessions.

The fixture was captured from the **per-sample** write path (pre-batching);
``tests/system/test_golden_session.py`` replays the same runs through the
current collection path and asserts every session file hashes identically,
which pins the batched writers to byte parity with the sequential ones.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/golden/regen_session_hashes.py
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO_ROOT = HERE.parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.system.api import viprof_profile  # noqa: E402
from repro.workloads import by_name  # noqa: E402
from repro.xen import GuestSpec, MultiStackEngine  # noqa: E402

VIPROF_PARAMS = dict(period=90_000, time_scale=0.1, seed=7)
XEN_PARAMS = dict(period=30_000, time_scale=0.08, seed=7)


def hash_tree(root: Path) -> dict[str, str]:
    """sha256 of every file under ``root``, keyed by POSIX relative path."""
    return {
        p.relative_to(root).as_posix(): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def viprof_session_hashes() -> dict[str, str]:
    run = viprof_profile(by_name("fop"), **VIPROF_PARAMS)
    assert run.session_dir is not None
    return hash_tree(run.session_dir)


def xen_session_hashes() -> dict[str, str]:
    engine = MultiStackEngine(
        [GuestSpec(by_name("fop")), GuestSpec(by_name("ps"), weight=512)],
        **XEN_PARAMS,
    )
    result = engine.run()
    result.save_samples()
    return hash_tree(result.session_dir)


def main() -> int:
    payload = {
        "viprof_fop": {"params": VIPROF_PARAMS, "files": viprof_session_hashes()},
        "xen_fop_ps": {"params": XEN_PARAMS, "files": xen_session_hashes()},
    }
    out = HERE / "session_hashes.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
