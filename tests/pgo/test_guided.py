"""Unit tests for profile-guided compilation decisions."""

import pytest

from repro.errors import ConfigError
from repro.jvm.compiler import CompilerTier
from repro.pgo.guided import PgoAdaptiveSystem, hot_method_names
from repro.profiling.model import RawSample, ResolvedSample
from repro.profiling.report import build_report
from tests.conftest import make_tiny_methods


def jit_sample(symbol):
    raw = RawSample(
        pc=0x6080_0000, event_name="GLOBAL_POWER_EVENTS", task_id=1,
        kernel_mode=False, cycle=0,
    )
    return ResolvedSample(raw=raw, image="JIT.App", symbol=symbol)


def other_sample(image, symbol):
    raw = RawSample(
        pc=0x4000_0000, event_name="GLOBAL_POWER_EVENTS", task_id=1,
        kernel_mode=False, cycle=0,
    )
    return ResolvedSample(raw=raw, image=image, symbol=symbol)


class TestHotMethodNames:
    def test_extracts_hot_jit_methods_only(self):
        samples = (
            [jit_sample("app.A.hot")] * 50
            + [jit_sample("app.A.cold")]
            + [other_sample("RVM.map", "vm.Internal.method")] * 49
        )
        hot = hot_method_names(build_report(samples), min_share=0.05)
        assert hot == {"app.A.hot"}

    def test_threshold_validation(self):
        rep = build_report([jit_sample("x")])
        with pytest.raises(ConfigError):
            hot_method_names(rep, min_share=0.0)

    def test_empty_report(self):
        rep = build_report([], events=("GLOBAL_POWER_EVENTS",))
        assert hot_method_names(rep) == set()


class TestPgoAdaptiveSystem:
    def make_system(self, hot, tier=CompilerTier.OPT1):
        s = PgoAdaptiveSystem(hot_names=frozenset(hot), direct_tier=tier)
        s.bind_method_names(make_tiny_methods(3))
        return s

    def test_hot_method_compiled_directly_at_tier(self):
        s = self.make_system({"test.app.Worker.m0"})
        assert s.record_invocations(0, 1) is CompilerTier.OPT1
        assert s.pgo_compiles == 1

    def test_cold_method_follows_ladder(self):
        s = self.make_system({"test.app.Worker.m0"})
        assert s.record_invocations(1, 1) is CompilerTier.BASELINE
        assert s.pgo_compiles == 0

    def test_direct_tier_configurable(self):
        s = self.make_system({"test.app.Worker.m2"}, tier=CompilerTier.OPT2)
        assert s.record_invocations(2, 1) is CompilerTier.OPT2

    def test_hot_method_can_still_climb_past_direct_tier(self):
        s = self.make_system({"test.app.Worker.m0"})
        s.record_invocations(0, 1)
        s.note_compiled(0, CompilerTier.OPT1)
        decision = s.record_invocations(0, s.ladder.opt2_at)
        assert decision is CompilerTier.OPT2

    def test_unprofiled_phase_still_works(self):
        """Methods absent from the hot set behave exactly as the stock
        ladder — a profiling run that missed a phase degrades gracefully."""
        s = self.make_system(set())
        assert s.record_invocations(0, 1) is CompilerTier.BASELINE
        s.note_compiled(0, CompilerTier.BASELINE)
        assert s.record_invocations(0, s.ladder.opt0_at) is CompilerTier.OPT0
