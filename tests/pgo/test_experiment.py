"""Integration test for the two-pass PGO experiment."""

import pytest

from repro.errors import ConfigError
from repro.pgo import run_pgo_experiment
from tests.conftest import make_tiny_workload


@pytest.fixture(scope="module")
def pgo_result():
    return run_pgo_experiment(
        lambda: make_tiny_workload(base_time_s=0.6, burst=(10, 30)),
        time_scale=1.0,
        period=30_000,
        min_share=0.01,
    )


class TestPgoExperiment:
    def test_factory_validation(self):
        with pytest.raises(ConfigError):
            run_pgo_experiment(lambda: "not a workload", time_scale=0.1)

    def test_hot_set_found(self, pgo_result):
        assert pgo_result.hot_methods > 0
        assert pgo_result.pgo_compiles > 0
        assert pgo_result.pgo_compiles <= pgo_result.hot_methods

    def test_throughput_improves(self, pgo_result):
        """Hot code running optimized from its first call must complete more
        invocations within the same workload-cycle budget."""
        assert pgo_result.throughput_gain > 1.0

    def test_summary_format(self, pgo_result):
        txt = pgo_result.format_summary()
        assert "hot methods" in txt and "%" in txt
