"""Shared fixtures: small, fast workloads and assembled subsystems."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

# Property-test profiles.  CI's fault-matrix job runs the fuzz and
# crash-recovery suites under "fault-matrix": derandomized (fixed seed,
# so a red run is reproducible locally with the same profile) and with a
# deeper example budget than the default interactive profile.
settings.register_profile("ci", max_examples=60, deadline=None)
settings.register_profile(
    "fault-matrix", max_examples=200, deadline=None, derandomize=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

from repro.hardware.memory import WorkingSet
from repro.jvm.bootimage import build_boot_image
from repro.jvm.heap import Heap
from repro.jvm.model import JavaMethod, MethodId
from repro.workloads.base import Workload
from repro.workloads.synthetic import SyntheticSpec, make_methods


def make_tiny_methods(n: int = 6, seed: int = 3) -> list[JavaMethod]:
    """A handful of hand-sized methods for unit tests."""
    methods = []
    for i in range(n):
        methods.append(
            JavaMethod(
                mid=MethodId(class_name="test.app.Worker", method_name=f"m{i}"),
                bytecode_size=100 + 30 * i,
                weight=1.0 / (i + 1),
                cycles_per_invocation=1500,
                alloc_bytes_per_invocation=800,
                accesses_per_invocation=200,
                working_set=WorkingSet(
                    base=0x7000_0000 + i * 0x10_0000,
                    size=64 * 1024,
                    seed=seed + i,
                ),
                callees=(max(0, i - 1),) if i else (),
            )
        )
    return methods


def make_tiny_workload(
    name: str = "tiny", base_time_s: float = 0.05, n: int = 6, **kwargs
) -> Workload:
    defaults = dict(
        survival_rate=0.1,
        nursery_bytes=64 * 1024,
        mature_bytes=2 * 1024 * 1024,
        phases=2,
        burst=(4, 12),
        seed=13,
    )
    defaults.update(kwargs)
    return Workload(
        name=name,
        base_time_s=base_time_s,
        methods=make_tiny_methods(n),
        **defaults,
    )


@pytest.fixture
def tiny_workload() -> Workload:
    return make_tiny_workload()


@pytest.fixture
def small_synthetic_workload() -> Workload:
    """A generated population, bigger than tiny but still fast."""
    spec = SyntheticSpec(
        package="test.gen",
        n_methods=40,
        mean_cycles_per_invocation=1800,
        alloc_bytes_per_kcycle=900,
        data_bytes=4 * 1024 * 1024,
        seed=21,
    )
    return Workload(
        name="gen-small",
        base_time_s=0.2,
        methods=make_methods(spec),
        nursery_bytes=128 * 1024,
        mature_bytes=4 * 1024 * 1024,
        seed=21,
    )


@pytest.fixture
def boot_image():
    return build_boot_image()


@pytest.fixture
def small_heap() -> Heap:
    return Heap(
        nursery_base=0x6080_0000,
        nursery_size=64 * 1024,
        mature_base=0x6100_0000,
        mature_size=1024 * 1024,
    )
