"""Property-based tests for the scheduler."""

from hypothesis import given, settings, strategies as st

from repro.os.process import Process
from repro.os.scheduler import Scheduler, Task, TaskState


def make_tasks(priorities):
    return [
        Task(process=Process(pid=100 + i, name=f"t{i}"), priority=p)
        for i, p in enumerate(priorities)
    ]


class TestSchedulerProperties:
    @given(
        priorities=st.lists(
            st.integers(min_value=1, max_value=3), min_size=2, max_size=6
        ),
        n_picks=st.integers(min_value=20, max_value=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_equal_priority_round_robin_is_fair(self, priorities, n_picks):
        """Among always-runnable tasks of the best priority class, pick
        counts never diverge by more than one."""
        s = Scheduler()
        tasks = make_tasks(priorities)
        for t in tasks:
            s.add(t)
        counts = {t.pid: 0 for t in tasks}
        for i in range(n_picks):
            picked, _ = s.pick(i)
            counts[picked.pid] += 1
        best = min(priorities)
        best_counts = [
            counts[t.pid] for t in tasks if t.priority == best
        ]
        assert max(best_counts) - min(best_counts) <= 1
        # Lower-priority tasks starve while better ones are runnable.
        assert all(
            counts[t.pid] == 0 for t in tasks if t.priority != best
        )

    @given(
        sleeps=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # task index
                st.integers(min_value=1, max_value=1000),  # wake deadline
            ),
            max_size=20,
        ),
        probe=st.integers(min_value=0, max_value=1500),
    )
    @settings(max_examples=50, deadline=None)
    def test_sleeping_task_never_picked_early(self, sleeps, probe):
        s = Scheduler()
        tasks = make_tasks([5, 5, 5, 5])
        for t in tasks:
            s.add(t)
        for idx, until in sleeps:
            s.sleep(tasks[idx], until)
        picked, _ = s.pick(probe)
        if picked is not None:
            assert not (
                picked.state is TaskState.SLEEPING and picked.wake_at > probe
            )
            # Invariant: a picked task is runnable.
            assert picked.state is TaskState.RUNNABLE

    @given(
        deadlines=st.lists(
            st.integers(min_value=1, max_value=10_000), min_size=1, max_size=6
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_next_wake_is_minimum(self, deadlines):
        s = Scheduler()
        tasks = make_tasks([5] * len(deadlines))
        for t, d in zip(tasks, deadlines):
            s.add(t)
            s.sleep(t, d)
        assert s.next_wake() == min(deadlines)
