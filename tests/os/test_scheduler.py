"""Unit tests for the scheduler."""

import pytest

from repro.errors import ConfigError
from repro.os.process import Process
from repro.os.scheduler import CONTEXT_SWITCH_CYCLES, Scheduler, Task, TaskState


def task(pid, name="t", priority=10):
    return Task(process=Process(pid=pid, name=name), priority=priority)


class TestScheduler:
    def test_single_runnable_picked_without_switch_cost(self):
        s = Scheduler()
        t = task(1)
        s.add(t)
        picked, cost = s.pick(0)
        assert picked is t
        assert cost == 0  # no previous task

    def test_repeat_pick_same_task_no_switch(self):
        s = Scheduler()
        t = task(1)
        s.add(t)
        s.pick(0)
        _, cost = s.pick(10)
        assert cost == 0
        assert s.context_switches == 0

    def test_switch_cost_charged_on_change(self):
        s = Scheduler()
        a, b = task(1), task(2)
        s.add(a)
        s.add(b)
        first, _ = s.pick(0)
        second, cost = s.pick(1)
        assert second is not first
        assert cost == CONTEXT_SWITCH_CYCLES
        assert s.context_switches == 1

    def test_round_robin_fairness(self):
        s = Scheduler()
        a, b = task(1), task(2)
        s.add(a)
        s.add(b)
        picks = [s.pick(i)[0].pid for i in range(6)]
        assert picks.count(1) == 3
        assert picks.count(2) == 3

    def test_priority_preference(self):
        s = Scheduler()
        lo, hi = task(1, priority=10), task(2, priority=5)
        s.add(lo)
        s.add(hi)
        assert s.pick(0)[0] is hi

    def test_sleep_and_wake(self):
        s = Scheduler()
        t = task(1)
        s.add(t)
        s.sleep(t, until=100)
        assert s.pick(50)[0] is None
        picked, _ = s.pick(100)
        assert picked is t
        assert t.state is TaskState.RUNNABLE

    def test_next_wake(self):
        s = Scheduler()
        a, b = task(1), task(2)
        s.add(a)
        s.add(b)
        s.sleep(a, 500)
        s.sleep(b, 200)
        assert s.next_wake() == 200

    def test_next_wake_none_when_all_runnable(self):
        s = Scheduler()
        s.add(task(1))
        assert s.next_wake() is None

    def test_exited_task_never_picked(self):
        s = Scheduler()
        t = task(1)
        s.add(t)
        s.remove(t)
        assert s.pick(0)[0] is None
        assert t not in s.tasks

    def test_duplicate_pid_rejected(self):
        s = Scheduler()
        s.add(task(1))
        with pytest.raises(ConfigError):
            s.add(task(1))

    def test_all_sleeping_returns_none(self):
        s = Scheduler()
        a, b = task(1), task(2)
        s.add(a)
        s.add(b)
        s.sleep(a, 1000)
        s.sleep(b, 2000)
        picked, cost = s.pick(10)
        assert picked is None and cost == 0
