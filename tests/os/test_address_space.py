"""Unit tests for VMAs and address spaces."""

import pytest

from repro.errors import AddressSpaceError
from repro.os.address_space import PAGE_SIZE, VMA, AddressSpace, VmaKind
from repro.os.binary import NO_SYMBOLS, BinaryImage, Symbol


def image():
    return BinaryImage("lib.so", 0x4000, [Symbol(0x1000, 0x200, "func")])


class TestVMA:
    def test_alignment_enforced(self):
        with pytest.raises(AddressSpaceError, match="aligned"):
            VMA(0x1001, 0x2000, VmaKind.ANON)

    def test_empty_rejected(self):
        with pytest.raises(AddressSpaceError, match="empty"):
            VMA(0x2000, 0x2000, VmaKind.ANON)

    def test_file_requires_image(self):
        with pytest.raises(AddressSpaceError):
            VMA(0x1000, 0x2000, VmaKind.FILE)

    def test_anon_must_not_carry_image(self):
        with pytest.raises(AddressSpaceError):
            VMA(0x1000, 0x2000, VmaKind.ANON, image=image())

    def test_to_image_offset(self):
        v = VMA(0x10000, 0x14000, VmaKind.FILE, image=image())
        assert v.to_image_offset(0x11000) == 0x1000
        with pytest.raises(AddressSpaceError):
            v.to_image_offset(0x14000)

    def test_to_image_offset_with_segment_offset(self):
        v = VMA(0x10000, 0x13000, VmaKind.FILE, image=image(), image_offset=0x1000)
        assert v.to_image_offset(0x10000) == 0x1000

    def test_anon_label_matches_paper_format(self):
        v = VMA(0x60801000 & ~0xFFF, 0x61482000, VmaKind.ANON)
        assert v.label().startswith("anon (range:0x")


class TestAddressSpace:
    def test_map_and_resolve(self):
        space = AddressSpace()
        v = space.map(0x10000, 0x4000, VmaKind.FILE, image=image())
        assert space.resolve(0x11000) is v
        assert space.resolve(0x9000) is None
        assert space.resolve(v.end) is None

    def test_map_rounds_to_pages(self):
        space = AddressSpace()
        v = space.map(0x10010, 100, VmaKind.ANON)
        assert v.start == 0x10000
        assert v.end == 0x11000

    def test_overlap_rejected(self):
        space = AddressSpace()
        space.map(0x10000, 0x4000, VmaKind.ANON)
        with pytest.raises(AddressSpaceError, match="overlaps"):
            space.map(0x12000, 0x4000, VmaKind.ANON)
        with pytest.raises(AddressSpaceError, match="overlaps"):
            space.map(0xF000, 0x2000, VmaKind.ANON)

    def test_adjacent_maps_allowed(self):
        space = AddressSpace()
        a = space.map(0x10000, 0x1000, VmaKind.ANON)
        b = space.map(a.end, 0x1000, VmaKind.ANON)
        assert b.start == a.end

    def test_unmap(self):
        space = AddressSpace()
        v = space.map(0x10000, 0x1000, VmaKind.ANON)
        space.unmap(v)
        assert space.resolve(0x10000) is None
        with pytest.raises(AddressSpaceError):
            space.unmap(v)

    def test_resolve_symbolic_file(self):
        space = AddressSpace()
        space.map(0x10000, 0x4000, VmaKind.FILE, image=image())
        assert space.resolve_symbolic(0x11080) == ("lib.so", "func")
        assert space.resolve_symbolic(0x10000) == ("lib.so", NO_SYMBOLS)

    def test_resolve_symbolic_anon(self):
        space = AddressSpace()
        space.map(0x60800000, 0x100000, VmaKind.ANON)
        label, sym = space.resolve_symbolic(0x60840000)
        assert label.startswith("anon (range:")
        assert sym == NO_SYMBOLS

    def test_resolve_symbolic_unmapped(self):
        assert AddressSpace().resolve_symbolic(0x1234) is None

    def test_many_mappings_sorted_lookup(self):
        space = AddressSpace()
        vmas = [
            space.map(0x10000 + i * 0x10000, 0x1000, VmaKind.ANON)
            for i in range(50)
        ]
        for v in vmas:
            assert space.resolve(v.start + 0x10) is v
        assert len(space) == 50
