"""Unit tests for the kernel: process table, kernel symbolization."""

import pytest

from repro.errors import AddressSpaceError
from repro.os.binary import NO_SYMBOLS
from repro.os.kernel import Kernel, build_vmlinux


class TestVmlinux:
    def test_contains_core_symbols(self):
        img = build_vmlinux()
        for name in ("schedule", "do_page_fault", "timer_interrupt",
                     "oprofile_nmi_handler", "__switch_to"):
            img.find_symbol(name)

    def test_symbols_non_overlapping(self):
        img = build_vmlinux()
        syms = img.symbols
        for a, b in zip(syms, syms[1:]):
            assert a.end <= b.offset


class TestProcessTable:
    def test_spawn_unique_pids(self):
        k = Kernel()
        a, b = k.spawn("x"), k.spawn("y")
        assert a.pid != b.pid
        assert k.process(a.pid) is a
        assert k.process(999999) is None

    def test_processes_listing(self):
        k = Kernel()
        k.spawn("x")
        k.spawn("y")
        assert len(k.processes) == 2


class TestKernelSymbolization:
    def test_kernel_pc_roundtrip(self):
        k = Kernel()
        pc = k.kernel_pc("schedule")
        assert k.is_kernel_address(pc)
        image, sym = k.resolve_kernel(pc)
        assert image == "vmlinux"
        assert sym == "schedule"

    def test_kernel_pc_with_offset(self):
        k = Kernel()
        pc = k.kernel_pc("do_page_fault", offset=0x10)
        assert k.resolve_kernel(pc)[1] == "do_page_fault"

    def test_kernel_pc_offset_clamped_to_symbol(self):
        k = Kernel()
        pc = k.kernel_pc("schedule", offset=10**9)
        assert k.resolve_kernel(pc)[1] == "schedule"

    def test_user_address_rejected(self):
        k = Kernel()
        with pytest.raises(AddressSpaceError):
            k.resolve_kernel(0x0804_8000)

    def test_unknown_kernel_offset_is_no_symbols(self):
        k = Kernel()
        image, sym = k.resolve_kernel(k.layout.kernel_base + 0x10)
        assert sym == NO_SYMBOLS

    def test_is_kernel_address_boundary(self):
        k = Kernel()
        assert not k.is_kernel_address(k.layout.kernel_base - 1)
        assert k.is_kernel_address(k.layout.kernel_base)


class TestActivities:
    def test_standard_activities_resolve(self):
        k = Kernel()
        for act in k.standard_activities():
            k.kernel_pc(act.symbol)
            assert act.cycles > 0
