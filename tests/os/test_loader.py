"""Unit tests for the program loader and layout."""

import pytest

from repro.errors import LoaderError
from repro.os.address_space import AddressSpace, VmaKind
from repro.os.binary import BinaryImage, standard_libraries
from repro.os.loader import Layout, ProgramLoader


def loader():
    return ProgramLoader(AddressSpace())


class TestLayout:
    def test_default_ordering(self):
        lay = Layout()
        assert lay.exe_base < lay.lib_base < lay.anon_base < lay.kernel_base

    def test_bad_ordering_rejected(self):
        with pytest.raises(LoaderError):
            Layout(exe_base=0x50000000, lib_base=0x40000000)


class TestProgramLoader:
    def test_executable_at_classic_base(self):
        l = loader()
        v = l.load_executable(BinaryImage("app", 0x8000))
        assert v.start == 0x0804_8000
        assert v.kind is VmaKind.FILE

    def test_libraries_stack_upwards_with_guard_pages(self):
        l = loader()
        libs = standard_libraries()
        vmas = [l.load_library(img) for img in libs]
        for a, b in zip(vmas, vmas[1:]):
            assert b.start > a.end  # guard page between
        assert vmas[0].start == Layout().lib_base

    def test_anonymous_auto_placement(self):
        l = loader()
        a = l.map_anonymous(0x10000)
        b = l.map_anonymous(0x10000)
        assert a.start == Layout().anon_base
        assert b.start > a.end
        assert a.kind is VmaKind.ANON

    def test_anonymous_explicit_placement(self):
        l = loader()
        v = l.map_anonymous(0x10000, at=0x7000_0000)
        assert v.start == 0x7000_0000

    def test_file_segment_at_fixed_address(self):
        l = loader()
        img = BinaryImage("RVM.code.image", 0x80000)
        v = l.map_file_segment(img, at=0x6000_0000)
        assert v.start == 0x6000_0000
        assert v.image is img

    def test_stack_below_kernel(self):
        l = loader()
        v = l.map_stack()
        lay = Layout()
        assert v.end == lay.stack_top
        assert v.kind is VmaKind.STACK

    def test_anonymous_exhaustion(self):
        l = loader()
        with pytest.raises(LoaderError, match="exhausted"):
            l.map_anonymous(0x7000_0000)  # bigger than the anon region

    def test_full_process_layout_resolves_everywhere(self):
        space = AddressSpace()
        l = ProgramLoader(space)
        exe = l.load_executable(BinaryImage("app", 0x8000))
        lib = l.load_library(standard_libraries()[0])
        heap = l.map_anonymous(0x100000)
        stack = l.map_stack()
        assert space.resolve(exe.start + 4) is exe
        assert space.resolve(lib.start + 4) is lib
        assert space.resolve(heap.start + 4) is heap
        assert space.resolve(stack.start + 4) is stack
