"""Property-based tests: address-space invariants under arbitrary map
sequences."""

from hypothesis import given, settings, strategies as st

from repro.errors import AddressSpaceError
from repro.os.address_space import PAGE_SIZE, AddressSpace, VmaKind

MAP_REQUESTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 24),  # start
        st.integers(min_value=1, max_value=1 << 18),  # size
    ),
    min_size=1,
    max_size=40,
)


class TestAddressSpaceProperties:
    @given(reqs=MAP_REQUESTS)
    @settings(max_examples=60, deadline=None)
    def test_no_two_vmas_overlap(self, reqs):
        """However many maps succeed or fail, the installed VMAs never
        overlap and stay sorted."""
        space = AddressSpace()
        for start, size in reqs:
            try:
                space.map(start, size, VmaKind.ANON)
            except AddressSpaceError:
                pass
        vmas = list(space)
        for a, b in zip(vmas, vmas[1:]):
            assert a.end <= b.start

    @given(reqs=MAP_REQUESTS, probe=st.integers(min_value=0, max_value=1 << 25))
    @settings(max_examples=60, deadline=None)
    def test_resolve_agrees_with_linear_scan(self, reqs, probe):
        space = AddressSpace()
        for start, size in reqs:
            try:
                space.map(start, size, VmaKind.ANON)
            except AddressSpaceError:
                pass
        expected = next((v for v in space if v.contains(probe)), None)
        assert space.resolve(probe) is expected

    @given(reqs=MAP_REQUESTS)
    @settings(max_examples=40, deadline=None)
    def test_successful_maps_are_page_aligned_and_cover_request(self, reqs):
        space = AddressSpace()
        for start, size in reqs:
            try:
                v = space.map(start, size, VmaKind.ANON)
            except AddressSpaceError:
                continue
            assert v.start % PAGE_SIZE == 0
            assert v.end % PAGE_SIZE == 0
            assert v.start <= start
            assert v.end >= start + size

    @given(reqs=MAP_REQUESTS)
    @settings(max_examples=40, deadline=None)
    def test_unmap_everything_empties_space(self, reqs):
        space = AddressSpace()
        installed = []
        for start, size in reqs:
            try:
                installed.append(space.map(start, size, VmaKind.ANON))
            except AddressSpaceError:
                pass
        for v in installed:
            space.unmap(v)
        assert len(space) == 0
        assert space.resolve(reqs[0][0]) is None
