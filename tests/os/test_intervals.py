"""Unit + randomized tests for the shared interval index."""

import random
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.os.intervals import Interval, IntervalIndex, PackedIntervalTable


def iv(start, end, payload=None):
    return Interval(start, end, payload)


class TestInterval:
    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Interval(10, 10, None)
        with pytest.raises(ConfigError):
            Interval(10, 5, None)

    def test_contains_half_open(self):
        r = iv(0x100, 0x200)
        assert r.contains(0x100)
        assert r.contains(0x1FF)
        assert not r.contains(0x200)
        assert not r.contains(0xFF)

    def test_overlaps(self):
        assert iv(0, 10).overlaps(iv(9, 20))
        assert not iv(0, 10).overlaps(iv(10, 20))  # half-open: touching ok
        assert iv(5, 6).overlaps(iv(0, 100))


class TestStab:
    def test_disjoint_lookup(self):
        idx = IntervalIndex(
            [iv(0x1000, 0x1100, "a"), iv(0x2000, 0x2200, "b")]
        )
        assert idx.first_covering(0x1000).payload == "a"
        assert idx.first_covering(0x10FF).payload == "a"
        assert idx.first_covering(0x1100) is None
        assert idx.first_covering(0x2100).payload == "b"
        assert idx.first_covering(0) is None
        assert idx.first_covering(0x9999_9999) is None

    def test_stab_returns_all_covering(self):
        idx = IntervalIndex(
            [iv(0, 100, "wide"), iv(10, 20, "inner"), iv(50, 60, "other")]
        )
        assert [i.payload for i in idx.stab(15)] == ["wide", "inner"]
        assert [i.payload for i in idx.stab(55)] == ["wide", "other"]
        assert [i.payload for i in idx.stab(99)] == ["wide"]
        assert idx.stab(100) == ()

    def test_first_covering_prefers_greatest_start(self):
        idx = IntervalIndex([iv(0, 100, "wide"), iv(10, 20, "inner")])
        assert idx.first_covering(15).payload == "inner"
        assert idx.first_covering(30).payload == "wide"

    def test_nested_long_interval_found(self):
        # The long interval starts far left of the stab point; the
        # prefix-max-end walk must keep looking past nearer misses.
        idx = IntervalIndex(
            [iv(0, 1000, "long"), iv(100, 110, "x"), iv(200, 210, "y")]
        )
        assert idx.first_covering(500).payload == "long"

    def test_empty_index(self):
        idx = IntervalIndex([])
        assert idx.first_covering(0) is None
        assert idx.stab(0) == ()
        assert idx.is_disjoint()
        assert idx.overlapping_pairs() == []


class TestOverlapDetection:
    def test_disjoint(self):
        idx = IntervalIndex([iv(0, 10), iv(10, 20), iv(30, 40)])
        assert idx.is_disjoint()
        assert idx.overlapping_pairs() == []

    def test_single_overlap(self):
        idx = IntervalIndex([iv(0, 10, "a"), iv(5, 15, "b")])
        assert not idx.is_disjoint()
        pairs = idx.overlapping_pairs()
        assert len(pairs) == 1
        assert {pairs[0][0].payload, pairs[0][1].payload} == {"a", "b"}

    def test_all_pairs_reported(self):
        idx = IntervalIndex([iv(0, 100, "a"), iv(10, 20, "b"), iv(15, 30, "c")])
        got = {
            frozenset((a.payload, b.payload))
            for a, b in idx.overlapping_pairs()
        }
        assert got == {
            frozenset(("a", "b")),
            frozenset(("a", "c")),
            frozenset(("b", "c")),
        }


class TestFirstCoveringMany:
    def test_matches_scalar_on_sorted_points(self):
        idx = IntervalIndex(
            [iv(0x1000, 0x1100, "a"), iv(0x2000, 0x2200, "b")]
        )
        points = [0, 0x1000, 0x10FF, 0x1100, 0x2100, 0x9999]
        assert idx.first_covering_many(points) == [
            idx.first_covering(p) for p in points
        ]

    def test_overlap_still_prefers_greatest_start(self):
        # The run shortcut must not get stuck on "wide" once the walk
        # enters "inner" territory, nor stay on "inner" past its end.
        idx = IntervalIndex([iv(0, 100, "wide"), iv(10, 20, "inner")])
        got = idx.first_covering_many([5, 12, 15, 25, 99])
        assert [r.payload for r in got] == [
            "wide", "inner", "inner", "wide", "wide"
        ]

    def test_rejects_unsorted_points(self):
        idx = IntervalIndex([iv(0, 10)])
        with pytest.raises(ConfigError):
            idx.first_covering_many([5, 3])

    def test_empty_inputs(self):
        assert IntervalIndex([]).first_covering_many([1, 2]) == [None, None]
        assert IntervalIndex([iv(0, 10)]).first_covering_many([]) == []

    @pytest.mark.parametrize("seed", [2, 17, 41])
    def test_randomized_matches_scalar(self, seed):
        rng = random.Random(seed)
        intervals = []
        for i in range(100):
            start = rng.randrange(0, 4000)
            intervals.append(iv(start, start + rng.randrange(1, 150), i))
        idx = IntervalIndex(intervals)
        points = sorted(
            rng.randrange(-10, 4300) for _ in range(500)
        )
        assert idx.first_covering_many(points) == [
            idx.first_covering(p) for p in points
        ]


class TestRandomizedAgainstBruteForce:
    @pytest.mark.parametrize("seed", [1, 7, 23, 99])
    def test_stab_matches_linear_scan(self, seed):
        rng = random.Random(seed)
        intervals = []
        for i in range(120):
            start = rng.randrange(0, 5000)
            size = rng.randrange(1, 200)
            intervals.append(iv(start, start + size, i))
        idx = IntervalIndex(intervals)
        for _ in range(300):
            point = rng.randrange(-10, 5300)
            expect = sorted(
                (i for i in intervals if i.contains(point)),
                key=lambda i: (i.start, i.end),
            )
            assert list(idx.stab(point)) == expect
            first = idx.first_covering(point)
            if expect:
                assert first == expect[-1]
            else:
                assert first is None

    @pytest.mark.parametrize("seed", [3, 11])
    def test_overlap_pairs_match_quadratic_check(self, seed):
        rng = random.Random(seed)
        intervals = []
        for i in range(60):
            start = rng.randrange(0, 2000)
            intervals.append(iv(start, start + rng.randrange(1, 100), i))
        idx = IntervalIndex(intervals)
        expect = set()
        for i, a in enumerate(intervals):
            for b in intervals[i + 1:]:
                if a.overlaps(b):
                    expect.add(frozenset((a.payload, b.payload)))
        got = {
            frozenset((a.payload, b.payload))
            for a, b in idx.overlapping_pairs()
        }
        assert got == expect
        assert idx.is_disjoint() == (not expect)


# A disjoint layout as (gap, size) segments laid out left to right —
# by construction sorted and non-overlapping, which is exactly the
# precondition PackedIntervalTable's single-probe bisect relies on.
SEGMENTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=60),  # gap before the range
        st.integers(min_value=1, max_value=120),  # range size
    ),
    max_size=40,
)


def lay_out(segments):
    """Turn (gap, size) segments into sorted disjoint [start, end) pairs."""
    spans = []
    cursor = 0
    for gap, size in segments:
        start = cursor + gap
        spans.append((start, start + size))
        cursor = start + size
    return spans


class TestPackedIntervalTable:
    """The packed table must be position-identical to IntervalIndex over
    any disjoint layout — it is the arena's zero-copy stand-in for it."""

    def build(self, spans):
        table = PackedIntervalTable(
            array("q", (s for s, _ in spans)),
            array("q", (e for _, e in spans)),
        )
        idx = IntervalIndex(
            [Interval(s, e, i) for i, (s, e) in enumerate(spans)]
        )
        return table, idx

    @given(segments=SEGMENTS, probes=st.lists(
        st.integers(min_value=-50, max_value=8000), max_size=80
    ))
    @settings(max_examples=80, deadline=None)
    def test_scalar_matches_object_index(self, segments, probes):
        table, idx = self.build(lay_out(segments))
        for p in probes:
            hit = idx.first_covering(p)
            row = table.first_covering(p)
            if hit is None:
                assert row == -1
            else:
                assert row == hit.payload

    @given(segments=SEGMENTS, probes=st.lists(
        st.integers(min_value=-50, max_value=8000), max_size=80
    ))
    @settings(max_examples=80, deadline=None)
    def test_run_matches_scalar(self, segments, probes):
        table, _ = self.build(lay_out(segments))
        points = sorted(probes)
        assert table.first_covering_many(points) == [
            table.first_covering(p) for p in points
        ]

    def test_rejects_mismatched_columns(self):
        with pytest.raises(ConfigError):
            PackedIntervalTable([0, 10], [5])

    def test_rejects_unsorted_points(self):
        table = PackedIntervalTable([0], [10])
        with pytest.raises(ConfigError):
            table.first_covering_many([5, 3])

    def test_empty_table(self):
        table = PackedIntervalTable(array("q"), array("q"))
        assert len(table) == 0
        assert table.first_covering(0) == -1
        assert table.first_covering_many([1, 2]) == [-1, -1]
