"""Unit tests for binary images and symbol resolution."""

import pytest

from repro.errors import SymbolError
from repro.os.binary import NO_SYMBOLS, BinaryImage, Symbol, standard_libraries


class TestSymbol:
    def test_validation(self):
        with pytest.raises(SymbolError):
            Symbol(offset=-1, size=10, name="x")
        with pytest.raises(SymbolError):
            Symbol(offset=0, size=0, name="x")

    def test_contains(self):
        s = Symbol(offset=0x100, size=0x40, name="f")
        assert s.contains(0x100)
        assert s.contains(0x13F)
        assert not s.contains(0x140)
        assert not s.contains(0xFF)


class TestBinaryImage:
    def test_symbol_at_exact(self):
        img = BinaryImage("a.so", 0x1000, [Symbol(0x100, 0x40, "f")])
        assert img.symbol_at(0x100).name == "f"
        assert img.symbol_at(0x13F).name == "f"

    def test_symbol_gap_returns_none(self):
        img = BinaryImage(
            "a.so", 0x1000,
            [Symbol(0x100, 0x40, "f"), Symbol(0x200, 0x40, "g")],
        )
        assert img.symbol_at(0x180) is None

    def test_out_of_image_returns_none(self):
        img = BinaryImage("a.so", 0x1000, [Symbol(0x100, 0x40, "f")])
        assert img.symbol_at(0x2000) is None
        assert img.symbol_at(-1) is None

    def test_symbol_name_at_stripped(self):
        img = BinaryImage("stripped.so", 0x1000)
        assert img.stripped
        assert img.symbol_name_at(0x500) == NO_SYMBOLS

    def test_overlapping_symbols_rejected(self):
        with pytest.raises(SymbolError, match="overlap"):
            BinaryImage(
                "a.so", 0x1000,
                [Symbol(0x100, 0x80, "f"), Symbol(0x150, 0x40, "g")],
            )

    def test_symbol_past_image_rejected(self):
        with pytest.raises(SymbolError, match="past image size"):
            BinaryImage("a.so", 0x100, [Symbol(0x80, 0x100, "f")])

    def test_find_symbol(self):
        img = BinaryImage("a.so", 0x1000, [Symbol(0x100, 0x40, "f")])
        assert img.find_symbol("f").offset == 0x100
        with pytest.raises(SymbolError):
            img.find_symbol("nope")

    def test_unsorted_input_sorted_internally(self):
        img = BinaryImage(
            "a.so", 0x1000,
            [Symbol(0x200, 0x40, "g"), Symbol(0x100, 0x40, "f")],
        )
        assert img.symbol_at(0x110).name == "f"


class TestStandardLibraries:
    def test_paper_libraries_present(self):
        names = {img.name for img in standard_libraries()}
        assert "libc-2.3.2.so" in names
        assert "libfb.so" in names
        assert "libxul.so.0d" in names

    def test_libxul_is_stripped(self):
        libxul = next(
            i for i in standard_libraries() if i.name.startswith("libxul")
        )
        assert libxul.stripped

    def test_libc_has_memset(self):
        libc = next(
            i for i in standard_libraries() if i.name.startswith("libc")
        )
        assert libc.find_symbol("memset").size > 0

    def test_libfb_has_figure1_symbols(self):
        libfb = next(i for i in standard_libraries() if i.name == "libfb.so")
        libfb.find_symbol("fbCopyAreammx")
        libfb.find_symbol("fbCompositeSolidMask_nx8x8888mmx")
