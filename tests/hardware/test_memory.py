"""Unit tests for working sets and address streams."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hardware.memory import WorkingSet


class TestWorkingSet:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkingSet(base=0, size=0)
        with pytest.raises(ConfigError):
            WorkingSet(base=0, size=100, locality=1.5)
        with pytest.raises(ConfigError):
            WorkingSet(base=0, size=100, hot_fraction=0.0)

    def test_stream_length(self):
        ws = WorkingSet(base=0x1000, size=1 << 16, seed=1)
        s = ws.stream(100)
        assert len(s) == 100

    def test_stream_addresses_within_bounds(self):
        ws = WorkingSet(base=0x1000, size=1 << 16, seed=1)
        s = ws.stream(500)
        assert (s.addresses >= 0x1000).all()
        assert (s.addresses < 0x1000 + (1 << 16) + 64).all()

    def test_stream_positive_count_required(self):
        ws = WorkingSet(base=0, size=1024, seed=1)
        with pytest.raises(ConfigError):
            ws.stream(0)

    def test_full_locality_is_sequential_over_hot_region(self):
        ws = WorkingSet(base=0, size=1 << 16, locality=1.0, hot_fraction=0.5, seed=1)
        s = ws.stream(8, line=64)
        diffs = np.diff(s.addresses)
        assert (diffs == 64).all()

    def test_sequential_cursor_persists_across_streams(self):
        ws = WorkingSet(base=0, size=1 << 16, locality=1.0, seed=1)
        a = ws.stream(4, line=64).addresses
        b = ws.stream(4, line=64).addresses
        assert b[0] == a[-1] + 64

    def test_zero_locality_is_uniform(self):
        ws = WorkingSet(base=0, size=1 << 20, locality=0.0, seed=1)
        s = ws.stream(2000)
        # Uniform draws should span most of the region.
        assert s.addresses.max() - s.addresses.min() > (1 << 19)

    def test_ws_ids_unique(self):
        a = WorkingSet(base=0, size=1024, seed=1)
        b = WorkingSet(base=0, size=1024, seed=1)
        assert a.ws_id != b.ws_id

    def test_deterministic_streams_for_same_seed(self):
        a = WorkingSet(base=0, size=1 << 18, locality=0.5, seed=42)
        b = WorkingSet(base=0, size=1 << 18, locality=0.5, seed=42)
        assert (a.stream(64).addresses == b.stream(64).addresses).all()


class TestExpectedMissRate:
    def test_fits_in_cache_low_rate(self):
        ws = WorkingSet(base=0, size=256 * 1024, seed=1)
        assert ws.expected_miss_rate(1 << 20) <= 0.01

    def test_exceeds_cache_higher_rate(self):
        small = WorkingSet(base=0, size=256 * 1024, locality=0.5, seed=1)
        big = WorkingSet(base=0, size=64 << 20, locality=0.5, seed=1)
        cache = 1 << 20
        assert big.expected_miss_rate(cache) > small.expected_miss_rate(cache)

    def test_locality_reduces_rate(self):
        tight = WorkingSet(base=0, size=64 << 20, locality=0.95, seed=1)
        loose = WorkingSet(base=0, size=64 << 20, locality=0.1, seed=1)
        cache = 1 << 20
        assert tight.expected_miss_rate(cache) < loose.expected_miss_rate(cache)

    def test_rate_in_unit_interval(self):
        for size in (1024, 1 << 20, 1 << 28):
            for loc in (0.0, 0.5, 1.0):
                ws = WorkingSet(base=0, size=size, locality=loc, seed=1)
                r = ws.expected_miss_rate(1 << 20)
                assert 0.0 <= r <= 1.0

    def test_bad_cache_size_rejected(self):
        ws = WorkingSet(base=0, size=1024, seed=1)
        with pytest.raises(ConfigError):
            ws.expected_miss_rate(0)
