"""Unit tests for the CPU quantum executor: overflow splitting, PC
interpolation, NMI masking, and idle semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HardwareError
from repro.hardware.counters import CounterBank, CounterConfig
from repro.hardware.cpu import CPU, Quantum
from repro.hardware.events import (
    BSQ_CACHE_REFERENCE,
    GLOBAL_POWER_EVENTS,
    EventCounts,
)
from repro.hardware.interrupts import CpuMode


def make_cpu(period=90_000, cache_period=None):
    cpu = CPU()
    cpu.counters.program(CounterConfig(event=GLOBAL_POWER_EVENTS, period=period))
    if cache_period:
        cpu.counters.program(
            CounterConfig(event=BSQ_CACHE_REFERENCE, period=cache_period)
        )
    return cpu


def quantum(cycles, pc=0x40_0000, code_len=0x400, misses=0, mode=CpuMode.USER):
    return Quantum(
        pc_start=pc,
        code_len=code_len,
        counts=EventCounts(
            cycles=cycles, instructions=cycles // 2, l2_misses=misses
        ),
        mode=mode,
    )


class TestExecuteBasics:
    def test_clock_advances_by_quantum_cycles(self):
        cpu = make_cpu()
        cpu.execute(quantum(10_000))
        assert cpu.cycle == 10_000
        assert cpu.stats.user_cycles == 10_000

    def test_kernel_mode_accounting(self):
        cpu = make_cpu()
        cpu.execute(quantum(5_000, mode=CpuMode.KERNEL))
        assert cpu.stats.kernel_cycles == 5_000
        assert cpu.stats.user_cycles == 0

    def test_no_overflow_no_nmi(self):
        cpu = make_cpu(period=90_000)
        fired = []
        cpu.nmi.register(lambda f: fired.append(f) or 0)
        cpu.execute(quantum(89_999))
        assert not fired

    def test_overflow_raises_nmi_at_interpolated_pc(self):
        cpu = make_cpu(period=90_000)
        frames = []
        cpu.nmi.register(lambda f: frames.append(f) or 0)
        # Two quanta of 45_000: overflow lands exactly at the end of the
        # second quantum.
        cpu.execute(quantum(45_000, pc=0x1000, code_len=0x1000))
        cpu.execute(quantum(45_000, pc=0x2000, code_len=0x1000))
        assert len(frames) == 1
        f = frames[0]
        assert 0x2000 <= f.pc < 0x3000
        assert f.event_name == "GLOBAL_POWER_EVENTS"

    def test_mid_quantum_overflow_pc_proportional(self):
        cpu = make_cpu(period=90_000)
        frames = []
        cpu.nmi.register(lambda f: frames.append(f) or 0)
        cpu.execute(quantum(180_000, pc=0x10_000, code_len=0x1000))
        # Two overflows: at cycle 90_000 (midpoint) and 180_000 (end).
        assert len(frames) == 2
        assert frames[0].pc == 0x10_000 + 0x800
        assert frames[0].cycle == 90_000

    def test_multiple_counters_interleave(self):
        cpu = make_cpu(period=90_000, cache_period=1_000)
        events = []
        cpu.nmi.register(lambda f: events.append(f.event_name) or 0)
        cpu.execute(quantum(90_000, misses=1_500))
        assert events.count("BSQ_CACHE_REFERENCE") == 1
        assert events.count("GLOBAL_POWER_EVENTS") == 1
        # The miss counter (1000 misses == 60_000 cycles) fires first.
        assert events[0] == "BSQ_CACHE_REFERENCE"

    def test_task_id_propagates(self):
        cpu = make_cpu(period=90_000)
        frames = []
        cpu.nmi.register(lambda f: frames.append(f) or 0)
        cpu.current_task_id = 4242
        cpu.execute(quantum(90_000))
        assert frames[0].task_id == 4242


class TestHandlerCostCharging:
    def test_handler_cycles_charged_to_kernel(self):
        cpu = make_cpu(period=90_000)
        cpu.nmi.register(lambda f: 1_700)
        cpu.execute(quantum(90_000))
        assert cpu.stats.nmi_handler_cycles == 1_700
        assert cpu.stats.kernel_cycles == 1_700
        assert cpu.cycle == 91_700

    def test_handler_cycles_tick_counters_masked(self):
        """Overflows during the handler reload silently (masked), they do
        not recurse into the handler."""
        cpu = make_cpu(period=90_000)
        calls = []
        cpu.nmi.register(lambda f: calls.append(f) or 200_000)
        cpu.execute(quantum(90_000))
        assert len(calls) == 1
        assert cpu.stats.masked_overflows >= 2

    def test_nmi_count(self):
        cpu = make_cpu(period=90_000)
        cpu.nmi.register(lambda f: 100)
        cpu.execute(quantum(270_000))
        assert cpu.stats.nmi_count == 3


class TestIdle:
    def test_idle_advances_clock_without_samples(self):
        cpu = make_cpu(period=3_000)
        fired = []
        cpu.nmi.register(lambda f: fired.append(f) or 0)
        cpu.idle(1_000_000)
        assert cpu.cycle == 1_000_000
        assert not fired
        assert cpu.stats.user_cycles == 0

    def test_negative_idle_rejected(self):
        cpu = make_cpu()
        with pytest.raises(HardwareError):
            cpu.idle(-1)


class TestQuantumValidation:
    def test_negative_pc_rejected(self):
        with pytest.raises(HardwareError):
            Quantum(pc_start=-1, code_len=4, counts=EventCounts())

    def test_negative_code_len_rejected(self):
        with pytest.raises(HardwareError):
            Quantum(pc_start=0, code_len=-4, counts=EventCounts())


class TestSamplingRateProperty:
    @given(
        period=st.sampled_from([45_000, 90_000, 450_000]),
        n_quanta=st.integers(min_value=10, max_value=60),
        qsize=st.integers(min_value=500, max_value=5_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_sample_count_matches_period(self, period, n_quanta, qsize):
        """Property: over any quantum stream, sample count equals
        total_cycles // period when the handler is free (no overhead
        feedback)."""
        cpu = make_cpu(period=period)
        frames = []
        cpu.nmi.register(lambda f: frames.append(f) or 0)
        for i in range(n_quanta):
            cpu.execute(quantum(qsize, pc=0x1000 * (i + 1)))
        assert len(frames) == (n_quanta * qsize) // period

    @given(
        period=st.sampled_from([45_000, 90_000]),
        total=st.integers(min_value=100_000, max_value=400_000),
        cuts=st.lists(st.integers(min_value=1, max_value=399_999),
                      max_size=8, unique=True),
    )
    @settings(max_examples=30, deadline=None)
    def test_quantum_partitioning_invariance(self, period, total, cuts):
        """Splitting the same work into arbitrary quanta never changes the
        number of samples taken or the final counter state — the property
        that makes the engine's step granularity a free parameter."""
        def run(sizes):
            cpu = make_cpu(period=period)
            frames = []
            cpu.nmi.register(lambda f: frames.append(f) or 0)
            for s in sizes:
                cpu.execute(quantum(s))
            remaining = cpu.counters.counters[0].remaining
            return len(frames), remaining

        one_shot = run([total])
        points = sorted(c for c in cuts if c < total)
        pieces, prev = [], 0
        for p in points:
            pieces.append(p - prev)
            prev = p
        pieces.append(total - prev)
        split = run([p for p in pieces if p > 0])
        assert split == one_shot

    @given(
        period=st.sampled_from([45_000, 90_000]),
        sizes=st.lists(st.integers(min_value=100, max_value=200_000),
                       min_size=1, max_size=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_interpolated_pcs_stay_in_quantum_range(self, period, sizes):
        cpu = make_cpu(period=period)
        frames = []
        cpu.nmi.register(lambda f: frames.append(f) or 0)
        spans = []
        pc = 0x100000
        for s in sizes:
            spans.append((pc, pc + 0x800))
            cpu.execute(quantum(s, pc=pc, code_len=0x800))
            pc += 0x10000
        for f in frames:
            assert any(lo <= f.pc < hi for lo, hi in spans)
