"""Property-based tests for the set-associative cache simulator."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hardware.cache import CacheGeometry, SetAssociativeCache
from repro.hardware.memory import AddressStream

GEOMETRIES = st.sampled_from(
    [
        CacheGeometry(4096, 64, 1),
        CacheGeometry(4096, 64, 2),
        CacheGeometry(8192, 32, 4),
        CacheGeometry(16384, 64, 8),
    ]
)

ADDRS = st.lists(st.integers(min_value=0, max_value=1 << 22), min_size=1, max_size=200)


class TestCacheProperties:
    @given(geometry=GEOMETRIES, addrs=ADDRS)
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, geometry, addrs):
        c = SetAssociativeCache(geometry)
        for a in addrs:
            c.access(a)
        assert c.hits + c.misses == len(addrs)

    @given(geometry=GEOMETRIES, addrs=ADDRS)
    @settings(max_examples=60, deadline=None)
    def test_accessed_address_is_resident(self, geometry, addrs):
        """The most recently accessed line is always resident (MRU is never
        the eviction victim with associativity >= 1)."""
        c = SetAssociativeCache(geometry)
        for a in addrs:
            c.access(a)
            assert c.resident(a)

    @given(geometry=GEOMETRIES, addrs=ADDRS)
    @settings(max_examples=40, deadline=None)
    def test_immediate_rereference_hits(self, geometry, addrs):
        c = SetAssociativeCache(geometry)
        for a in addrs:
            c.access(a)
            assert c.access(a) is True

    @given(geometry=GEOMETRIES, addrs=ADDRS)
    @settings(max_examples=40, deadline=None)
    def test_misses_bounded_below_by_compulsory(self, geometry, addrs):
        """Compulsory bound: the first touch of every distinct line is
        always a miss, so misses >= distinct lines touched."""
        c = SetAssociativeCache(geometry)
        for a in addrs:
            c.access(a)
        shift = geometry.line_bytes.bit_length() - 1
        distinct_lines = {a >> shift for a in addrs}
        assert c.misses >= len(distinct_lines)

    @given(geometry=GEOMETRIES, addrs=ADDRS)
    @settings(max_examples=40, deadline=None)
    def test_stream_equivalent_to_singles(self, geometry, addrs):
        c1 = SetAssociativeCache(geometry)
        for a in addrs:
            c1.access(a)
        c2 = SetAssociativeCache(geometry)
        c2.access_stream(AddressStream(np.array(addrs, dtype=np.int64), 0))
        assert (c1.hits, c1.misses) == (c2.hits, c2.misses)

    @given(geometry=GEOMETRIES, addrs=ADDRS)
    @settings(max_examples=40, deadline=None)
    def test_reset_restores_cold_state(self, geometry, addrs):
        c = SetAssociativeCache(geometry)
        for a in addrs:
            c.access(a)
        first_cold = (c.hits, c.misses)
        c.reset()
        for a in addrs:
            c.access(a)
        assert (c.hits, c.misses) == first_cold

    @given(addrs=ADDRS)
    @settings(max_examples=30, deadline=None)
    def test_fully_associative_dominates_direct_mapped(self, addrs):
        """Same capacity: higher associativity never produces more misses on
        a trace that fits in one set's reach... (not true in general —
        Belady anomalies exist for LRU only across capacities, not
        associativity). We instead check the weaker, always-true property:
        a cache with MORE total lines and the same line size never misses
        more under LRU (inclusion property of LRU stacks)."""
        small = SetAssociativeCache(CacheGeometry(4096, 64, 64))  # 1 set, 64 ways
        big = SetAssociativeCache(CacheGeometry(8192, 64, 128))  # 1 set, 128 ways
        for a in addrs:
            small.access(a)
            big.access(a)
        assert big.misses <= small.misses
