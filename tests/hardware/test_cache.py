"""Unit tests for the cache models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hardware.cache import (
    CacheGeometry,
    SetAssociativeCache,
    StatisticalCacheModel,
)
from repro.hardware.memory import AddressStream, WorkingSet


def small_geometry():
    # 8 KB, 64 B lines, 2-way => 64 sets
    return CacheGeometry(size_bytes=8192, line_bytes=64, associativity=2)


class TestCacheGeometry:
    def test_paper_l2_is_1mb_8way(self):
        g = CacheGeometry.paper_l2()
        assert g.size_bytes == 1 << 20
        assert g.associativity == 8
        assert g.num_sets * g.line_bytes * g.associativity == g.size_bytes

    def test_non_pow2_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=3000)

    def test_non_pow2_line_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=4096, line_bytes=48)

    def test_cache_smaller_than_one_set_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=64, line_bytes=64, associativity=2)


class TestSetAssociativeCache:
    def test_first_access_misses_second_hits(self):
        c = SetAssociativeCache(small_geometry())
        assert c.access(0x1000) is False
        assert c.access(0x1000) is True
        assert c.access(0x103F) is True  # same 64B line

    def test_adjacent_line_misses(self):
        c = SetAssociativeCache(small_geometry())
        c.access(0x1000)
        assert c.access(0x1040) is False

    def test_lru_eviction_within_set(self):
        g = small_geometry()  # 2-way, 64 sets => same set every 64*64=4096 bytes
        c = SetAssociativeCache(g)
        a, b, d = 0x0, 0x1000, 0x2000  # all map to set 0
        c.access(a)
        c.access(b)
        c.access(a)  # refresh a; b is now LRU
        c.access(d)  # evicts b
        assert c.resident(a)
        assert not c.resident(b)
        assert c.resident(d)

    def test_stats_accumulate(self):
        c = SetAssociativeCache(small_geometry())
        c.access(0x0)
        c.access(0x0)
        assert c.hits == 1 and c.misses == 1 and c.accesses == 2

    def test_reset(self):
        c = SetAssociativeCache(small_geometry())
        c.access(0x0)
        c.reset()
        assert c.accesses == 0
        assert not c.resident(0x0)

    def test_access_stream_counts(self):
        c = SetAssociativeCache(small_geometry())
        addrs = np.array([0, 0, 64, 64, 128], dtype=np.int64)
        hits, misses = c.access_stream(AddressStream(addrs, 0))
        assert hits == 2 and misses == 3

    def test_working_set_fitting_in_cache_eventually_all_hits(self):
        g = small_geometry()
        c = SetAssociativeCache(g)
        lines = [i * 64 for i in range(g.size_bytes // 64 // 2)]  # half-fill
        for a in lines:
            c.access(a)
        h0 = c.hits
        for a in lines:
            assert c.access(a) is True
        assert c.hits == h0 + len(lines)


class TestStatisticalCacheModel:
    def test_zero_accesses_zero_misses(self):
        m = StatisticalCacheModel(CacheGeometry.paper_l2())
        ws = WorkingSet(base=0, size=1 << 22, seed=1)
        assert m.misses_for(ws, 0) == 0

    def test_negative_accesses_rejected(self):
        m = StatisticalCacheModel(CacheGeometry.paper_l2())
        ws = WorkingSet(base=0, size=1 << 22, seed=1)
        with pytest.raises(ConfigError):
            m.misses_for(ws, -1)

    def test_misses_bounded_by_accesses(self):
        m = StatisticalCacheModel(CacheGeometry.paper_l2(), seed=4)
        ws = WorkingSet(base=0, size=1 << 26, locality=0.1, seed=2)
        n = 10_000
        misses = m.misses_for(ws, n)
        assert 0 <= misses <= n

    def test_small_working_set_has_low_miss_rate(self):
        m = StatisticalCacheModel(CacheGeometry.paper_l2(), seed=4)
        small = WorkingSet(base=0, size=64 * 1024, seed=3)
        misses = m.misses_for(small, 100_000)
        assert misses / 100_000 < 0.02

    def test_huge_working_set_has_high_miss_rate(self):
        m = StatisticalCacheModel(CacheGeometry.paper_l2(), seed=4)
        big = WorkingSet(base=0, size=1 << 27, locality=0.2, seed=5)
        misses = m.misses_for(big, 100_000)
        assert misses / 100_000 > 0.3

    def test_deterministic_per_model_seed_and_working_set(self):
        ws = WorkingSet(base=0, size=1 << 24, locality=0.5, seed=9)
        m1 = StatisticalCacheModel(CacheGeometry.paper_l2(), seed=7)
        m2 = StatisticalCacheModel(CacheGeometry.paper_l2(), seed=7)
        seq1 = [m1.misses_for(ws, 1000) for _ in range(5)]
        seq2 = [m2.misses_for(ws, 1000) for _ in range(5)]
        assert seq1 == seq2

    def test_different_model_seeds_differ(self):
        ws = WorkingSet(base=0, size=1 << 25, locality=0.4, seed=9)
        m1 = StatisticalCacheModel(CacheGeometry.paper_l2(), seed=7)
        m2 = StatisticalCacheModel(CacheGeometry.paper_l2(), seed=8)
        seq1 = [m1.misses_for(ws, 2000) for _ in range(8)]
        seq2 = [m2.misses_for(ws, 2000) for _ in range(8)]
        assert seq1 != seq2

    def test_stats_accumulate(self):
        m = StatisticalCacheModel(CacheGeometry.paper_l2(), seed=4)
        ws = WorkingSet(base=0, size=1 << 24, seed=6)
        m.misses_for(ws, 500)
        assert m.accesses == 500
        assert m.hits + m.misses == 500
