"""Tests for the ITLB models."""

import pytest

from repro.errors import ConfigError
from repro.hardware.tlb import DirectMappedTlb, StatisticalTlbModel


class TestDirectMappedTlb:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DirectMappedTlb(entries=0)
        with pytest.raises(ConfigError):
            DirectMappedTlb(entries=48)

    def test_reach(self):
        assert DirectMappedTlb(entries=64).reach_bytes == 256 * 1024

    def test_first_touch_misses_then_hits(self):
        tlb = DirectMappedTlb(entries=64)
        assert tlb.access(0x1000) is False
        assert tlb.access(0x1000) is True
        assert tlb.access(0x1FFF) is True  # same 4K page
        assert tlb.access(0x2000) is False

    def test_conflict_eviction(self):
        tlb = DirectMappedTlb(entries=4)
        a = 0x0
        b = a + 4 * 4096  # same slot in a 4-entry direct-mapped TLB
        tlb.access(a)
        tlb.access(b)
        assert tlb.access(a) is False  # evicted by b

    def test_working_set_within_reach_steady_state_hits(self):
        tlb = DirectMappedTlb(entries=64)
        pages = [i * 4096 for i in range(64)]
        for p in pages:
            tlb.access(p)
        h0 = tlb.hits
        for p in pages:
            assert tlb.access(p) is True
        assert tlb.hits == h0 + 64

    def test_reset(self):
        tlb = DirectMappedTlb(entries=8)
        tlb.access(0)
        tlb.reset()
        assert tlb.accesses == 0
        assert tlb.access(0) is False


class TestStatisticalTlbModel:
    def test_fitting_footprint_never_misses(self):
        m = StatisticalTlbModel(entries=64, seed=1)
        assert m.misses_for_step(8192, footprint_bytes=200 * 1024) == 0

    def test_oversized_footprint_misses(self):
        m = StatisticalTlbModel(entries=64, seed=1)
        total = sum(
            m.misses_for_step(16 * 4096, footprint_bytes=4 * 1024 * 1024)
            for _ in range(200)
        )
        assert total > 0
        # Rate bounded by pages touched.
        assert total <= 200 * 16

    def test_misses_scale_with_pressure(self):
        lo = StatisticalTlbModel(entries=64, seed=2)
        hi = StatisticalTlbModel(entries=64, seed=2)
        n_lo = sum(
            lo.misses_for_step(8 * 4096, footprint_bytes=512 * 1024)
            for _ in range(300)
        )
        n_hi = sum(
            hi.misses_for_step(8 * 4096, footprint_bytes=8 * 1024 * 1024)
            for _ in range(300)
        )
        assert n_hi > n_lo

    def test_validation(self):
        m = StatisticalTlbModel()
        with pytest.raises(ConfigError):
            m.misses_for_step(-1, 100)
        with pytest.raises(ConfigError):
            StatisticalTlbModel(entries=0)

    def test_engine_produces_itlb_events(self, tmp_path):
        """End to end: a code footprint beyond 256 KB yields ITLB misses
        in the ground-truth event stream."""
        from repro import base_run
        from tests.conftest import make_tiny_workload

        run = base_run(
            make_tiny_workload(base_time_s=0.3), noise=False
        )
        # tiny workload's boot-hot 160K + bodies is near the reach; just
        # check the plumbing executed without error and stats exist.
        assert run.vm_stats.live_code_bytes > 0
