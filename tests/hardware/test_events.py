"""Unit tests for hardware event definitions and EventCounts arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.hardware.events import (
    EVENTS,
    BSQ_CACHE_REFERENCE,
    GLOBAL_POWER_EVENTS,
    EventCounts,
    event_by_name,
)


class TestEventRegistry:
    def test_registry_contains_paper_events(self):
        assert "GLOBAL_POWER_EVENTS" in EVENTS
        assert "BSQ_CACHE_REFERENCE" in EVENTS

    def test_event_by_name_roundtrip(self):
        for name, event in EVENTS.items():
            assert event_by_name(name) is event

    def test_event_by_name_unknown_raises(self):
        with pytest.raises(ConfigError, match="unknown hardware event"):
            event_by_name("NOT_AN_EVENT")

    def test_event_codes_are_unique(self):
        codes = [e.code for e in EVENTS.values()]
        assert len(codes) == len(set(codes))

    def test_counts_fields_exist_on_eventcounts(self):
        counts = EventCounts()
        for e in EVENTS.values():
            assert hasattr(counts, e.counts_field)

    def test_validate_period_rejects_below_minimum(self):
        with pytest.raises(ConfigError, match="below minimum"):
            GLOBAL_POWER_EVENTS.validate_period(10)

    def test_validate_period_accepts_minimum(self):
        GLOBAL_POWER_EVENTS.validate_period(GLOBAL_POWER_EVENTS.min_period)

    def test_cache_event_counts_misses(self):
        assert BSQ_CACHE_REFERENCE.counts_field == "l2_misses"


class TestEventCounts:
    def test_defaults_are_zero(self):
        c = EventCounts()
        assert c.cycles == 0 and c.l2_misses == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError, match="negative"):
            EventCounts(cycles=-1)

    def test_addition(self):
        a = EventCounts(cycles=10, instructions=5, l2_misses=2)
        b = EventCounts(cycles=3, branches=7)
        c = a + b
        assert c.cycles == 13 and c.instructions == 5
        assert c.l2_misses == 2 and c.branches == 7

    def test_inplace_addition(self):
        a = EventCounts(cycles=10)
        a += EventCounts(cycles=5, itlb_misses=1)
        assert a.cycles == 15 and a.itlb_misses == 1

    def test_get_by_field_name(self):
        c = EventCounts(l2_references=42)
        assert c.get("l2_references") == 42

    def test_scaled_floor_division(self):
        c = EventCounts(cycles=10, instructions=7)
        half = c.scaled(1, 2)
        assert half.cycles == 5 and half.instructions == 3

    def test_scaled_zero_denominator_rejected(self):
        with pytest.raises(ConfigError):
            EventCounts(cycles=1).scaled(1, 0)

    def test_minus_clamps_at_zero(self):
        a = EventCounts(cycles=5)
        b = EventCounts(cycles=9, branches=1)
        d = a.minus(b)
        assert d.cycles == 0 and d.branches == 0

    def test_scaled_plus_remainder_conserves_totals(self):
        c = EventCounts(
            cycles=997, instructions=613, l2_references=101, l2_misses=13,
            branches=77, branch_mispredicts=3, itlb_misses=2,
        )
        pre = c.scaled(311, 997)
        post = c.minus(pre)
        total = pre + post
        assert total.cycles == c.cycles
        assert total.instructions == c.instructions
        assert total.l2_misses == c.l2_misses
