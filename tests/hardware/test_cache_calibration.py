"""Calibration of the statistical cache model against the detailed
simulator.

The engine's default (statistical) model must agree with the real
set-associative simulator on the *regimes* that drive BSQ_CACHE_REFERENCE
sampling: working sets that fit the L2 miss rarely; working sets several
times the L2 miss heavily; locality moves the rate in the right direction
and by a comparable magnitude.
"""

import pytest

from repro.hardware.cache import (
    CacheGeometry,
    SetAssociativeCache,
    StatisticalCacheModel,
)
from repro.hardware.memory import WorkingSet

GEOMETRY = CacheGeometry(size_bytes=1 << 16, line_bytes=64, associativity=8)
N_ACCESSES = 30_000
WARMUP = 10_000


def detailed_rate(ws: WorkingSet) -> float:
    cache = SetAssociativeCache(GEOMETRY)
    cache.access_stream(ws.stream(WARMUP))  # warm the cache
    h0, m0 = cache.hits, cache.misses
    cache.access_stream(ws.stream(N_ACCESSES))
    return (cache.misses - m0) / N_ACCESSES


def statistical_rate(ws: WorkingSet) -> float:
    model = StatisticalCacheModel(GEOMETRY, seed=5)
    return model.misses_for(ws, N_ACCESSES) / N_ACCESSES


class TestCalibration:
    def test_fitting_working_set_both_near_zero(self):
        ws_args = dict(base=0, size=GEOMETRY.size_bytes // 4, locality=0.8)
        d = detailed_rate(WorkingSet(seed=1, **ws_args))
        s = statistical_rate(WorkingSet(seed=1, **ws_args))
        assert d < 0.03
        assert s < 0.03

    def test_thrashing_working_set_both_high(self):
        ws_args = dict(
            base=0, size=GEOMETRY.size_bytes * 16, locality=0.2,
            hot_fraction=0.02,
        )
        d = detailed_rate(WorkingSet(seed=2, **ws_args))
        s = statistical_rate(WorkingSet(seed=2, **ws_args))
        assert d > 0.4
        assert s > 0.4
        assert s == pytest.approx(d, abs=0.22)

    def test_locality_direction_agrees(self):
        """Raising locality must lower the rate in both models."""
        size = GEOMETRY.size_bytes * 8
        d_lo = detailed_rate(WorkingSet(base=0, size=size, locality=0.2, seed=3))
        d_hi = detailed_rate(WorkingSet(base=0, size=size, locality=0.9, seed=3))
        s_lo = statistical_rate(WorkingSet(base=0, size=size, locality=0.2, seed=3))
        s_hi = statistical_rate(WorkingSet(base=0, size=size, locality=0.9, seed=3))
        assert d_hi < d_lo
        assert s_hi < s_lo

    def test_size_direction_agrees(self):
        """Growing the working set must raise the rate in both models."""
        loc = 0.5
        d_small = detailed_rate(
            WorkingSet(base=0, size=GEOMETRY.size_bytes * 2, locality=loc, seed=4)
        )
        d_big = detailed_rate(
            WorkingSet(base=0, size=GEOMETRY.size_bytes * 32, locality=loc, seed=4)
        )
        s_small = statistical_rate(
            WorkingSet(base=0, size=GEOMETRY.size_bytes * 2, locality=loc, seed=4)
        )
        s_big = statistical_rate(
            WorkingSet(base=0, size=GEOMETRY.size_bytes * 32, locality=loc, seed=4)
        )
        assert d_big > d_small
        assert s_big > s_small

    @pytest.mark.parametrize("mult,loc", [(4, 0.3), (8, 0.5), (16, 0.7)])
    def test_midrange_rates_within_band(self, mult, loc):
        """In the regimes the benchmarks actually occupy, the two models
        agree within a generous but meaningful band."""
        ws_args = dict(base=0, size=GEOMETRY.size_bytes * mult, locality=loc)
        d = detailed_rate(WorkingSet(seed=6, **ws_args))
        s = statistical_rate(WorkingSet(seed=6, **ws_args))
        assert s == pytest.approx(d, abs=0.25)
