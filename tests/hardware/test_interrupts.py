"""Unit tests for the NMI line."""

from repro.hardware.interrupts import CpuMode, InterruptFrame, NMILine


def frame(pc=0x1000):
    return InterruptFrame(
        pc=pc, mode=CpuMode.USER, event_name="GLOBAL_POWER_EVENTS",
        task_id=1000, cycle=123,
    )


class TestNMILine:
    def test_unarmed_line_costs_nothing(self):
        line = NMILine()
        assert line.raise_nmi(frame()) == 0
        assert line.delivered == 0

    def test_handler_cost_returned(self):
        line = NMILine()
        line.register(lambda f: 1700)
        assert line.raise_nmi(frame()) == 1700
        assert line.delivered == 1

    def test_handler_sees_frame(self):
        line = NMILine()
        seen = []
        line.register(lambda f: seen.append(f) or 10)
        line.raise_nmi(frame(pc=0xDEAD0))
        assert seen[0].pc == 0xDEAD0
        assert seen[0].mode is CpuMode.USER

    def test_reentrant_nmi_dropped(self):
        line = NMILine()

        def reentrant_handler(f):
            # An overflow inside the handler: delivery must be suppressed.
            inner = line.raise_nmi(frame())
            assert inner == 0
            return 100

        line.register(reentrant_handler)
        assert line.raise_nmi(frame()) == 100
        assert line.delivered == 1
        assert line.dropped == 1

    def test_unregister(self):
        line = NMILine()
        line.register(lambda f: 5)
        line.unregister()
        assert not line.armed
        assert line.raise_nmi(frame()) == 0

    def test_handler_exception_clears_in_handler_state(self):
        line = NMILine()

        def bad(f):
            raise RuntimeError("boom")

        line.register(bad)
        try:
            line.raise_nmi(frame())
        except RuntimeError:
            pass
        line.register(lambda f: 7)
        assert line.raise_nmi(frame()) == 7
