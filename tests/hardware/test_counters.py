"""Unit + property tests for the counter bank."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, CounterError
from repro.hardware.counters import CounterBank, CounterConfig, HardwareCounter
from repro.hardware.events import (
    BSQ_CACHE_REFERENCE,
    GLOBAL_POWER_EVENTS,
    INSTR_RETIRED,
    EventCounts,
)


def cycles_config(period=90_000, **kw):
    return CounterConfig(event=GLOBAL_POWER_EVENTS, period=period, **kw)


class TestCounterConfig:
    def test_negative_period_rejected(self):
        with pytest.raises(ConfigError):
            CounterConfig(event=GLOBAL_POWER_EVENTS, period=-5)

    def test_below_event_minimum_rejected(self):
        with pytest.raises(ConfigError):
            CounterConfig(event=GLOBAL_POWER_EVENTS, period=100)

    def test_must_count_some_mode(self):
        with pytest.raises(ConfigError, match="at least one"):
            CounterConfig(
                event=GLOBAL_POWER_EVENTS, period=90_000,
                count_user=False, count_kernel=False,
            )


class TestHardwareCounter:
    def test_initial_remaining_is_period(self):
        c = HardwareCounter(config=cycles_config(90_000))
        assert c.remaining == 90_000

    def test_events_to_overflow_none_when_under(self):
        c = HardwareCounter(config=cycles_config(90_000))
        assert c.events_to_overflow(89_999) is None

    def test_events_to_overflow_exact(self):
        c = HardwareCounter(config=cycles_config(90_000))
        assert c.events_to_overflow(90_000) == 90_000

    def test_events_to_overflow_mid_quantum(self):
        c = HardwareCounter(config=cycles_config(90_000))
        c.consume(89_000)
        assert c.events_to_overflow(5_000) == 1_000

    def test_consume_counts_multiple_overflows(self):
        c = HardwareCounter(config=cycles_config(90_000))
        fired = c.consume(270_000)
        assert fired == 3
        assert c.remaining == 90_000

    def test_consume_partial_then_overflow(self):
        c = HardwareCounter(config=cycles_config(100_000))
        assert c.consume(60_000) == 0
        assert c.consume(60_000) == 1
        assert c.remaining == 100_000 - 20_000

    def test_negative_delta_rejected(self):
        c = HardwareCounter(config=cycles_config())
        with pytest.raises(CounterError):
            c.consume(-1)
        with pytest.raises(CounterError):
            c.events_to_overflow(-1)

    def test_reload(self):
        c = HardwareCounter(config=cycles_config(90_000))
        c.consume(10)
        c.reload()
        assert c.remaining == 90_000

    def test_mode_filtering(self):
        c = HardwareCounter(config=cycles_config(count_kernel=False))
        assert c.counts_in_mode(kernel_mode=False)
        assert not c.counts_in_mode(kernel_mode=True)

    @given(
        period=st.integers(min_value=3_000, max_value=1_000_000),
        deltas=st.lists(st.integers(min_value=0, max_value=500_000), max_size=30),
    )
    def test_overflow_count_matches_arithmetic(self, period, deltas):
        """Property: total overflows == floor(total_events / period) and the
        live remainder is consistent."""
        c = HardwareCounter(config=cycles_config(period))
        fired = sum(c.consume(d) for d in deltas)
        total = sum(deltas)
        assert fired == total // period
        assert c.remaining == period - (total % period)


class TestCounterBank:
    def test_program_and_len(self):
        bank = CounterBank()
        bank.program(cycles_config())
        assert len(bank) == 1

    def test_duplicate_event_rejected(self):
        bank = CounterBank()
        bank.program(cycles_config())
        with pytest.raises(CounterError, match="already has a counter"):
            bank.program(cycles_config(45_000))

    def test_bank_capacity(self):
        bank = CounterBank(num_counters=1)
        bank.program(cycles_config())
        with pytest.raises(CounterError, match="in use"):
            bank.program(CounterConfig(event=INSTR_RETIRED, period=90_000))

    def test_clear(self):
        bank = CounterBank()
        bank.program(cycles_config())
        bank.clear()
        assert len(bank) == 0

    def test_first_overflow_none_when_quiet(self):
        bank = CounterBank()
        bank.program(cycles_config(90_000))
        assert bank.first_overflow(EventCounts(cycles=100), False) is None

    def test_first_overflow_picks_earliest_in_cycle_space(self):
        bank = CounterBank()
        bank.program(cycles_config(90_000))
        bank.program(CounterConfig(event=BSQ_CACHE_REFERENCE, period=1_000))
        # 2000 misses across 100_000 cycles: miss counter fires at miss
        # 1000 == cycle 50_000; the cycle counter fires at cycle 90_000.
        counts = EventCounts(cycles=100_000, l2_misses=2_000)
        hit = bank.first_overflow(counts, kernel_mode=False)
        assert hit is not None
        counter, at_events, cyc_at = hit
        assert counter.event is BSQ_CACHE_REFERENCE
        assert at_events == 1_000
        assert cyc_at == 50_000

    def test_first_overflow_respects_mode(self):
        bank = CounterBank()
        bank.program(cycles_config(90_000, count_kernel=False))
        counts = EventCounts(cycles=200_000)
        assert bank.first_overflow(counts, kernel_mode=True) is None
        assert bank.first_overflow(counts, kernel_mode=False) is not None

    def test_consume_all_advances_every_counter(self):
        bank = CounterBank()
        c1 = bank.program(cycles_config(90_000))
        c2 = bank.program(CounterConfig(event=BSQ_CACHE_REFERENCE, period=1_000))
        bank.consume_all(EventCounts(cycles=10_000, l2_misses=100), False)
        assert c1.remaining == 80_000
        assert c2.remaining == 900
