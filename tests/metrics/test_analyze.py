"""Tests for the analyze engine: alignment, derived rates, gating, inputs."""

import json
from pathlib import Path

import pytest

from repro.errors import AnalysisError
from repro.metrics.analyze import (
    align_shares,
    analyze,
    derived_metrics,
    load_input,
)
from repro.metrics.bench import bench_summary_from_payload, write_bench_payload
from repro.metrics.model import (
    KIND_ARTIFACTS,
    KIND_BENCH,
    KIND_COLLECTION,
    SessionSummary,
    SymbolEntry,
)
from repro.metrics.panels import (
    AnalysisConfig,
    SymbolRules,
    Threshold,
    load_config,
)

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"
REGRESSION_A = FIXTURES / "analyze" / "regression-a.json"
REGRESSION_B = FIXTURES / "analyze" / "regression-b.json"
EV = "GLOBAL_POWER_EVENTS"


class TestIdentity:
    def test_identical_summaries_have_zero_deltas(self):
        a = load_input(REGRESSION_A)
        b = load_input(REGRESSION_A)
        result = analyze(a, b)
        assert result.ok
        assert all(s.delta == 0.0 for s in result.symbols)
        assert all(m.delta == 0.0 for m in result.metrics)

    def test_identity_json_is_byte_stable(self):
        runs = [
            analyze(load_input(REGRESSION_A), load_input(REGRESSION_A)).to_json()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert json.loads(runs[0])["ok"] is True


class TestSeededRegression:
    def test_fixture_pair_trips_all_gates(self):
        result = analyze(load_input(REGRESSION_A), load_input(REGRESSION_B))
        assert not result.ok
        subjects = {r.subject for r in result.regressions}
        assert "JIT.App:fixture.app.Alpha.run" in subjects  # +15pt gain
        assert "JIT.App:fixture.app.Hot.spin" in subjects   # appeared at 2%
        assert "cache.hit_rate_pct" in subjects             # 90% -> 60%
        assert "layers.kernel_pct" in subjects              # 20% -> 35%

    def test_vanished_symbol_is_flagged_not_gated(self):
        before = {("JIT.App", "gone"): 40.0, ("JIT.App", "stays"): 60.0}
        after = {("JIT.App", "stays"): 100.0}
        deltas = {d.symbol: d for d in align_shares(before, after)}
        assert deltas["gone"].vanished and not deltas["gone"].appeared
        assert deltas["gone"].delta == -40.0

    def test_kind_mismatch_raises(self):
        with pytest.raises(AnalysisError, match="cannot analyze"):
            analyze(
                SessionSummary(kind=KIND_BENCH),
                SessionSummary(kind=KIND_COLLECTION),
            )

    def test_pinned_event_missing_raises(self):
        config = AnalysisConfig(symbols=SymbolRules(event="ITLB_MISS"))
        a = load_input(REGRESSION_A)
        with pytest.raises(AnalysisError, match="ITLB_MISS"):
            analyze(a, a, config=config)


class TestDerivedMetrics:
    def test_total_yields_percentages(self):
        s = SessionSummary(
            panels={"layers": {"kernel": 25, "jit": 75, "total": 100}}
        )
        derived = derived_metrics(s)["layers"]
        assert derived["kernel_pct"] == 25.0
        assert derived["jit_pct"] == 75.0
        assert "total_pct" not in derived

    def test_hits_misses_yield_hit_rate(self):
        s = SessionSummary(panels={"cache": {"hits": 90, "misses": 10}})
        assert derived_metrics(s)["cache"]["hit_rate_pct"] == 90.0

    def test_zero_denominators_yield_no_rates(self):
        s = SessionSummary(
            panels={
                "layers": {"kernel": 0, "total": 0},
                "cache": {"hits": 0, "misses": 0},
            }
        )
        derived = derived_metrics(s)
        assert "kernel_pct" not in derived["layers"]
        assert "hit_rate_pct" not in derived["cache"]

    def test_max_ratio_gate(self):
        config = AnalysisConfig(
            symbols=SymbolRules(max_gain_points=None, max_appear_points=None),
            thresholds=(
                Threshold(metric="daemon.work_cycles", max_ratio=1.5),
            ),
        )
        a = SessionSummary(panels={"daemon": {"work_cycles": 100}})
        b = SessionSummary(panels={"daemon": {"work_cycles": 200}})
        result = analyze(a, b, config=config)
        assert [r.subject for r in result.regressions] == ["daemon.work_cycles"]
        assert analyze(b, a, config=config).ok  # shrinking is fine

    def test_absent_gated_metric_is_skipped(self):
        config = AnalysisConfig(
            thresholds=(Threshold(metric="gc.nope", max_delta=1.0),)
        )
        empty = SessionSummary()
        assert analyze(empty, empty, config=config).ok


class TestConfigLoading:
    def test_json_config(self, tmp_path):
        path = tmp_path / "gates.json"
        path.write_text(json.dumps({
            "symbols": {"max_gain_points": 2.5, "event": EV},
            "thresholds": [
                {"metric": "cache.hit_rate_pct", "direction": "down",
                 "max_delta": 1.0},
            ],
        }))
        config = load_config(path)
        assert config.symbols.max_gain_points == 2.5
        assert config.symbols.event == EV
        assert config.thresholds[0].panel == "cache"
        assert config.thresholds[0].key == "hit_rate_pct"

    def test_toml_config(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "gates.toml"
        path.write_text(
            '[symbols]\nmax_appear_points = 0.5\n\n'
            '[[thresholds]]\nmetric = "layers.kernel_pct"\n'
            'direction = "up"\nmax_delta = 3.0\n'
        )
        config = load_config(path)
        assert config.symbols.max_appear_points == 0.5
        assert config.thresholds[0].metric == "layers.kernel_pct"

    def test_bad_direction_rejected(self, tmp_path):
        path = tmp_path / "gates.json"
        path.write_text(json.dumps({
            "thresholds": [{"metric": "a.b", "direction": "sideways",
                            "max_delta": 1.0}],
        }))
        with pytest.raises(AnalysisError, match="direction"):
            load_config(path)

    def test_unbounded_threshold_rejected(self):
        with pytest.raises(AnalysisError, match="neither"):
            Threshold(metric="a.b")


class TestLoadInput:
    def test_session_directory_derives_artifacts_summary(self):
        summary = load_input(FIXTURES / "lint-session")
        assert summary.kind == KIND_ARTIFACTS
        assert summary.totals == {EV: 7}
        layers = summary.panel("layers")
        assert layers["total"] == 7 and layers["kernel"] == 1
        # The six heap samples all resolve through the epoch maps.
        assert summary.panel("jit")["resolved"] == 6
        assert {e.symbol for e in summary.symbols} >= {
            "fixture.app.Alpha.run", "fixture.app.Beta.step"
        }

    def test_identical_session_dirs_compare_clean(self):
        a = load_input(FIXTURES / "lint-session")
        b = load_input(FIXTURES / "lint-session-batched")
        result = analyze(a, b)
        assert result.ok
        assert all(s.delta == 0.0 for s in result.symbols)

    def test_legacy_report_doc(self, tmp_path):
        doc = {
            "events": {EV: 10},
            "symbols": [
                {"image": "JIT.App", "symbol": "m", "counts": {EV: 10},
                 "percent": {EV: 100.0}},
            ],
        }
        path = tmp_path / "report.json"
        path.write_text(json.dumps(doc))
        summary = load_input(path)
        assert summary.totals == {EV: 10}
        assert summary.symbols[0].key == ("JIT.App", "m")

    def test_unrecognized_input_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(AnalysisError, match="unrecognized input"):
            load_input(path)


class TestBenchSummaries:
    PAYLOAD = {
        "benchmark": "demo",
        "samples": 1000,
        "elapsed": 1.25,
        "smoke": True,
        "daemon": {"wakeups": 4, "speedup": 2.0},
        "configs": [
            {"workers": 1, "resolve_cache": False, "seconds": 2.0},
            {"workers": 1, "resolve_cache": True, "seconds": 1.0},
        ],
    }

    def test_payload_flattening(self):
        summary = bench_summary_from_payload(self.PAYLOAD)
        assert summary.kind == KIND_BENCH
        headline = summary.panel("headline")
        assert headline["samples"] == 1000 and headline["elapsed"] == 1.25
        assert summary.panel("daemon")["wakeups"] == 4
        configs = summary.panel("configs")
        assert configs["workers_1_resolve_cache_off_seconds"] == 2.0
        assert configs["workers_1_resolve_cache_on_seconds"] == 1.0

    def test_write_bench_payload_stamps_and_embeds(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        write_bench_payload(path, dict(self.PAYLOAD))
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 1
        assert isinstance(doc["cpu_count"], int)
        assert doc["summary"]["kind"] == KIND_BENCH
        loaded = load_input(path)
        assert loaded.kind == KIND_BENCH
        assert analyze(loaded, load_input(path)).ok
