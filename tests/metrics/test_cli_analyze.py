"""CLI coverage for ``viprof analyze`` and the two-path ``viprof diff``."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"
REGRESSION_A = str(FIXTURES / "analyze" / "regression-a.json")
REGRESSION_B = str(FIXTURES / "analyze" / "regression-b.json")
SESSION = str(FIXTURES / "lint-session")
SESSION_BATCHED = str(FIXTURES / "lint-session-batched")


class TestAnalyzeCli:
    def test_identity_exits_zero(self, capsys):
        assert main(
            ["analyze", REGRESSION_A, REGRESSION_A, "--fail-on-regression"]
        ) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_regression_without_fail_flag_exits_zero(self, capsys):
        assert main(["analyze", REGRESSION_A, REGRESSION_B]) == 0
        out = capsys.readouterr().out
        assert "FAIL" in out and "fixture.app.Alpha.run" in out

    def test_fail_on_regression_exits_three(self, capsys):
        assert main(
            ["analyze", REGRESSION_A, REGRESSION_B, "--fail-on-regression"]
        ) == 3
        assert "FAIL" in capsys.readouterr().out

    def test_json_output_is_byte_stable(self, capsys):
        outputs = []
        for _ in range(2):
            assert main(
                ["analyze", REGRESSION_A, REGRESSION_B, "--json"]
            ) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        doc = json.loads(outputs[0])
        assert doc["ok"] is False
        assert {r["subject"] for r in doc["regressions"]} >= {
            "cache.hit_rate_pct", "layers.kernel_pct"
        }

    def test_session_dirs_compare(self, capsys):
        assert main(
            ["analyze", SESSION, SESSION_BATCHED, "--fail-on-regression"]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_custom_config_loosens_gates(self, tmp_path, capsys):
        config = tmp_path / "gates.json"
        config.write_text(json.dumps({
            "symbols": {"max_gain_points": 50.0, "max_appear_points": 50.0},
            "thresholds": [],
        }))
        assert main(
            ["analyze", REGRESSION_A, REGRESSION_B,
             "--config", str(config), "--fail-on-regression"]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_missing_input_exits_two(self, capsys):
        assert main(
            ["analyze", REGRESSION_A, str(FIXTURES / "analyze" / "nope.json")]
        ) == 2
        assert "nope.json" in capsys.readouterr().err


class TestDiffTwoPaths:
    def test_diff_delegates_to_analyze(self, capsys):
        assert main(["diff", SESSION, SESSION_BATCHED]) == 0
        out = capsys.readouterr().out
        assert "analyze:" in out and "no regressions" in out

    def test_diff_three_paths_errors(self, capsys):
        assert main(["diff", SESSION, SESSION_BATCHED, SESSION]) == 2
