"""Property tests for the unified session-metrics model.

The model's two contracts, exercised with hypothesis:

* **round-trip**: ``SessionSummary -> canonical JSON -> parse`` is the
  identity, and re-serializing the parse yields the same bytes (the
  byte-stability ``viprof analyze --json`` builds on);
* **merge is exact summation**: totals, symbol counts, and panel
  counters add; events keep first-seen order; ``meta`` keeps only the
  agreed entries.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.metrics.model import (
    KIND_ARTIFACTS,
    KIND_BENCH,
    KIND_COLLECTION,
    KIND_PROFILE,
    SCHEMA_VERSION,
    SessionSummary,
    SymbolEntry,
)

EVENTS = ("GLOBAL_POWER_EVENTS", "BSQ_CACHE_REFERENCE", "ITLB_MISS")
KINDS = (KIND_PROFILE, KIND_COLLECTION, KIND_ARTIFACTS, KIND_BENCH)
IMAGES = ("JIT.App", "vmlinux", "RVM.map", "libc.so")

_name = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1,
    max_size=12,
)
_counts = st.dictionaries(
    st.sampled_from(EVENTS), st.integers(1, 10**9), max_size=3
)
_symbols = st.lists(
    st.builds(SymbolEntry, image=st.sampled_from(IMAGES), symbol=_name,
              counts=_counts),
    max_size=6,
    unique_by=lambda e: e.key,
)
_metric = st.one_of(
    st.integers(0, 10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
_panels = st.dictionaries(
    _name, st.dictionaries(_name, _metric, max_size=4), max_size=4
)
_meta = st.dictionaries(
    _name, st.one_of(st.integers(), _name, st.booleans()), max_size=4
)


def summaries(kind: str | None = None) -> st.SearchStrategy:
    return st.builds(
        SessionSummary,
        kind=st.sampled_from(KINDS) if kind is None else st.just(kind),
        events=st.lists(
            st.sampled_from(EVENTS), unique=True, max_size=3
        ).map(tuple),
        totals=st.dictionaries(
            st.sampled_from(EVENTS), st.integers(0, 10**9), max_size=3
        ),
        symbols=_symbols,
        panels=_panels,
        meta=_meta,
    )


class TestRoundTrip:
    @given(summaries())
    def test_json_roundtrip_is_identity(self, summary):
        text = summary.to_canonical_json()
        parsed = SessionSummary.from_json(text)
        assert parsed == summary
        assert parsed.to_canonical_json() == text

    @given(summaries())
    def test_canonical_json_is_byte_stable(self, summary):
        assert summary.to_canonical_json() == summary.to_canonical_json()

    @given(summary=summaries())
    def test_save_load_roundtrip(self, tmp_path_factory, summary):
        path = tmp_path_factory.mktemp("summary") / "summary.json"
        summary.save(path)
        assert SessionSummary.load(path) == summary


class TestMerge:
    @given(summaries(KIND_PROFILE), summaries(KIND_PROFILE))
    def test_merge_sums_counters(self, a, b):
        merged = a + b
        for ev in set(a.totals) | set(b.totals):
            assert merged.totals[ev] == (
                a.totals.get(ev, 0) + b.totals.get(ev, 0)
            )
        a_sym = {e.key: e.counts for e in a.symbols}
        b_sym = {e.key: e.counts for e in b.symbols}
        m_sym = {e.key: e.counts for e in merged.symbols}
        assert set(m_sym) == set(a_sym) | set(b_sym)
        for key, counts in m_sym.items():
            ac = a_sym.get(key, {})
            bc = b_sym.get(key, {})
            for ev in set(ac) | set(bc):
                assert counts[ev] == ac.get(ev, 0) + bc.get(ev, 0)
        for name in set(a.panels) | set(b.panels):
            ap = a.panels.get(name, {})
            bp = b.panels.get(name, {})
            for k in set(ap) | set(bp):
                assert merged.panels[name][k] == pytest.approx(
                    ap.get(k, 0) + bp.get(k, 0)
                )

    @given(summaries(KIND_PROFILE), summaries(KIND_PROFILE))
    def test_merge_keeps_first_seen_event_order(self, a, b):
        merged = a + b
        assert merged.events == a.events + tuple(
            ev for ev in b.events if ev not in a.events
        )

    @given(summaries(KIND_PROFILE), summaries(KIND_PROFILE))
    def test_merge_meta_keeps_only_agreement(self, a, b):
        merged = a + b
        for k, v in merged.meta.items():
            assert a.meta.get(k) == v and b.meta.get(k) == v

    def test_merge_rejects_kind_mismatch(self):
        with pytest.raises(AnalysisError, match="cannot merge"):
            SessionSummary(kind=KIND_PROFILE).merge(
                SessionSummary(kind=KIND_BENCH)
            )


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(AnalysisError, match="unknown summary kind"):
            SessionSummary(kind="nonsense")

    def test_unsupported_schema_version_rejected(self):
        doc = SessionSummary().to_dict()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(AnalysisError, match="schema_version"):
            SessionSummary.from_dict(doc)

    def test_bool_counter_rejected(self):
        doc = SessionSummary().to_dict()
        doc["panels"] = {"layers": {"kernel": True}}
        with pytest.raises(AnalysisError, match="must be a number"):
            SessionSummary.from_dict(doc)

    def test_bool_total_rejected(self):
        doc = SessionSummary().to_dict()
        doc["totals"] = {"GLOBAL_POWER_EVENTS": True}
        with pytest.raises(AnalysisError, match="not an integer"):
            SessionSummary.from_dict(doc)

    def test_garbage_json_rejected(self):
        with pytest.raises(AnalysisError, match="not valid JSON"):
            SessionSummary.from_json("{nope")
