"""Unit tests for the OProfile kernel module: counter programming, NMI
sample capture, buffer bounds."""

import pytest

from repro.errors import ProfilerError
from repro.hardware.cpu import CPU, Quantum
from repro.hardware.events import EventCounts
from repro.hardware.interrupts import CpuMode
from repro.oprofile.kmodule import (
    NMI_HANDLER_CYCLES,
    OprofileKernelModule,
    SampleBuffer,
)
from repro.oprofile.opcontrol import EventSpec, OprofileConfig
from repro.profiling.model import RawSample


def config(period=90_000, capacity=8192):
    return OprofileConfig(
        events=(EventSpec("GLOBAL_POWER_EVENTS", period),),
        buffer_capacity=capacity,
    )


def raw(pc=1):
    return RawSample(
        pc=pc, event_name="E", task_id=1, kernel_mode=False, cycle=0
    )


class TestSampleBuffer:
    def test_append_and_drain(self):
        b = SampleBuffer(capacity=4)
        assert b.append(raw(1))
        assert b.append(raw(2))
        out = b.drain()
        assert [s.pc for s in out] == [1, 2]
        assert len(b) == 0
        assert b.total_captured == 2

    def test_overflow_drops_and_counts(self):
        b = SampleBuffer(capacity=2)
        b.append(raw(1))
        b.append(raw(2))
        assert not b.append(raw(3))
        assert b.lost == 1
        assert len(b) == 2

    def test_drain_resets_room(self):
        b = SampleBuffer(capacity=1)
        b.append(raw(1))
        b.drain()
        assert b.append(raw(2))


class TestKernelModule:
    def test_setup_programs_counters_and_registers_nmi(self):
        cpu = CPU()
        km = OprofileKernelModule(config())
        km.setup(cpu)
        assert len(cpu.counters) == 1
        assert cpu.nmi.armed
        assert km.active

    def test_double_setup_rejected(self):
        cpu = CPU()
        km = OprofileKernelModule(config())
        km.setup(cpu)
        with pytest.raises(ProfilerError):
            km.setup(cpu)

    def test_shutdown_detaches(self):
        cpu = CPU()
        km = OprofileKernelModule(config())
        km.setup(cpu)
        km.shutdown()
        assert not cpu.nmi.armed
        assert len(cpu.counters) == 0
        km.shutdown()  # idempotent

    def test_samples_captured_on_overflow(self):
        cpu = CPU()
        km = OprofileKernelModule(config(period=90_000))
        km.setup(cpu)
        cpu.current_task_id = 77
        cpu.execute(
            Quantum(
                pc_start=0x1000, code_len=0x100,
                counts=EventCounts(cycles=180_000),
            )
        )
        samples = km.buffer.drain()
        assert len(samples) == 2
        s = samples[0]
        assert s.task_id == 77
        assert s.event_name == "GLOBAL_POWER_EVENTS"
        assert not s.kernel_mode
        assert s.epoch == -1  # no VM registered an epoch source

    def test_kernel_mode_flag(self):
        cpu = CPU()
        km = OprofileKernelModule(config(period=90_000))
        km.setup(cpu)
        cpu.execute(
            Quantum(
                pc_start=0xC010_0000, code_len=0x100,
                counts=EventCounts(cycles=90_000), mode=CpuMode.KERNEL,
            )
        )
        assert km.buffer.drain()[0].kernel_mode

    def test_handler_cost_is_charged(self):
        cpu = CPU()
        km = OprofileKernelModule(config(period=90_000))
        km.setup(cpu)
        cpu.execute(
            Quantum(
                pc_start=0x1000, code_len=0x100,
                counts=EventCounts(cycles=90_000),
            )
        )
        assert cpu.stats.nmi_handler_cycles == NMI_HANDLER_CYCLES
        assert cpu.cycle == 90_000 + NMI_HANDLER_CYCLES

    def test_epoch_source_stamps_samples(self):
        cpu = CPU()
        km = OprofileKernelModule(config(period=90_000))
        km.epoch_source = lambda: 42
        km.setup(cpu)
        cpu.execute(
            Quantum(
                pc_start=0x1000, code_len=0x100,
                counts=EventCounts(cycles=90_000),
            )
        )
        assert km.buffer.drain()[0].epoch == 42

    def test_buffer_overflow_under_sampling_storm(self):
        cpu = CPU()
        km = OprofileKernelModule(config(period=90_000, capacity=64))
        km.setup(cpu)
        cpu.execute(
            Quantum(
                pc_start=0x1000, code_len=0x100,
                counts=EventCounts(cycles=90_000 * 100),
            )
        )
        assert len(km.buffer) == 64
        # 100 overflows from the quantum itself plus a few from handler
        # cycles feeding back into the counter.
        assert 36 <= km.buffer.lost <= 40
