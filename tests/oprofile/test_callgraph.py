"""Unit tests for the arc-recording call-graph profiler."""

from repro.oprofile.callgraph import CallArc, CallGraphRecorder

A = ("app", "f")
B = ("libc", "memset")
C = ("vm", "gc")


class TestCallGraphRecorder:
    def test_record_arc(self):
        r = CallGraphRecorder()
        r.record(A, B, "EV")
        assert r.arcs[CallArc(A, B)]["EV"] == 1

    def test_root_frame_records_self_only(self):
        r = CallGraphRecorder()
        r.record(None, A, "EV")
        assert not r.arcs
        assert r.self_samples[A]["EV"] == 1

    def test_top_arcs_sorted(self):
        r = CallGraphRecorder()
        for _ in range(3):
            r.record(A, B, "EV")
        r.record(A, C, "EV")
        top = r.top_arcs("EV")
        assert top[0] == (CallArc(A, B), 3)
        assert top[1] == (CallArc(A, C), 1)

    def test_top_arcs_filters_event(self):
        r = CallGraphRecorder()
        r.record(A, B, "EV1")
        assert r.top_arcs("EV2") == []

    def test_arcs_from_and_into(self):
        r = CallGraphRecorder()
        r.record(A, B, "EV")
        r.record(C, B, "EV")
        assert len(r.arcs_into(B)) == 2
        assert len(r.arcs_from(A)) == 1

    def test_format_table(self):
        r = CallGraphRecorder()
        r.record(A, B, "EV")
        txt = r.format_table("EV")
        assert "app:f -> libc:memset" in txt
