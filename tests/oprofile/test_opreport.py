"""Unit tests for stock opreport post-processing."""

import pytest

from repro.errors import ProfilerError
from repro.oprofile.daemon import OprofileDaemon
from repro.oprofile.kmodule import OprofileKernelModule
from repro.oprofile.opcontrol import EventSpec, OprofileConfig
from repro.oprofile.opreport import UNKNOWN_IMAGE, OpReport
from repro.os.binary import NO_SYMBOLS, standard_libraries
from repro.os.kernel import Kernel
from repro.os.loader import ProgramLoader
from repro.profiling.model import RawSample


def config():
    return OprofileConfig(
        events=(
            EventSpec("GLOBAL_POWER_EVENTS", 90_000),
            EventSpec("BSQ_CACHE_REFERENCE", 1_000),
        )
    )


@pytest.fixture
def profiled_machine(tmp_path):
    kernel = Kernel()
    proc = kernel.spawn("java")
    loader = ProgramLoader(proc.address_space)
    libc_vma = loader.load_library(standard_libraries()[0])
    heap_vma = loader.map_anonymous(0x100000)
    km = OprofileKernelModule(config())
    daemon = OprofileDaemon(kernel, km, config(), tmp_path / "samples")
    daemon.start()
    libc = libc_vma.image
    memset_off = libc.find_symbol("memset").offset

    def add(pc, event="GLOBAL_POWER_EVENTS", kernel_mode=False, task=proc.pid):
        km.buffer.append(
            RawSample(
                pc=pc, event_name=event, task_id=task,
                kernel_mode=kernel_mode, cycle=0,
            )
        )

    # 3 memset time samples, 1 anon time sample, 1 kernel time sample,
    # 2 memset miss samples, 1 unknown-task sample.
    for _ in range(3):
        add(libc_vma.start + memset_off + 8)
    add(heap_vma.start + 0x40)
    add(kernel.kernel_pc("do_page_fault"), kernel_mode=True)
    for _ in range(2):
        add(libc_vma.start + memset_off, event="BSQ_CACHE_REFERENCE")
    add(0x500, task=424242)
    daemon.wakeup()
    daemon.stop()
    return kernel, proc, heap_vma, tmp_path / "samples"


class TestOpReport:
    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ProfilerError):
            OpReport(Kernel(), tmp_path / "nope")

    def test_empty_dir_rejected(self, tmp_path):
        d = tmp_path / "samples"
        d.mkdir()
        with pytest.raises(ProfilerError, match="no sample files"):
            OpReport(Kernel(), d).read_samples()

    def test_event_order_time_first(self, profiled_machine):
        kernel, _, _, sample_dir = profiled_machine
        rep = OpReport(kernel, sample_dir)
        assert rep.event_names()[0] == "GLOBAL_POWER_EVENTS"

    def test_symbol_resolution(self, profiled_machine):
        kernel, proc, heap_vma, sample_dir = profiled_machine
        report = OpReport(kernel, sample_dir).generate()
        memset = report.row_for("libc-2.3.2.so", "memset")
        assert memset.count("GLOBAL_POWER_EVENTS") == 3
        assert memset.count("BSQ_CACHE_REFERENCE") == 2

    def test_anon_samples_stay_anonymous(self, profiled_machine):
        kernel, _, heap_vma, sample_dir = profiled_machine
        report = OpReport(kernel, sample_dir).generate()
        anon_rows = [r for r in report.rows if r.image.startswith("anon (range:")]
        assert len(anon_rows) == 1
        assert anon_rows[0].symbol == NO_SYMBOLS
        assert f"{heap_vma.start:#x}" in anon_rows[0].image

    def test_kernel_samples_resolve_to_vmlinux(self, profiled_machine):
        kernel, _, _, sample_dir = profiled_machine
        report = OpReport(kernel, sample_dir).generate()
        assert report.row_for("vmlinux", "do_page_fault") is not None

    def test_unknown_task_reported_unknown(self, profiled_machine):
        kernel, _, _, sample_dir = profiled_machine
        report = OpReport(kernel, sample_dir).generate()
        assert report.row_for(UNKNOWN_IMAGE, NO_SYMBOLS) is not None

    def test_pid_filter_keeps_kernel_samples(self, profiled_machine):
        kernel, proc, _, sample_dir = profiled_machine
        report = OpReport(kernel, sample_dir).generate(pid=proc.pid)
        assert report.row_for("vmlinux", "do_page_fault") is not None
        assert report.row_for(UNKNOWN_IMAGE, NO_SYMBOLS) is None

    def test_process_summary(self, profiled_machine):
        kernel, proc, _, sample_dir = profiled_machine
        summary = OpReport(kernel, sample_dir).process_summary()
        by_pid = {pid: (name, n) for pid, name, n in summary}
        assert by_pid[proc.pid][0] == "java"
        assert by_pid[proc.pid][1] >= 6
        assert by_pid[424242][0] == "(unknown)"
        # Sorted by sample count, descending.
        counts = [n for _, _, n in summary]
        assert counts == sorted(counts, reverse=True)

    def test_totals_match_sample_counts(self, profiled_machine):
        kernel, _, _, sample_dir = profiled_machine
        report = OpReport(kernel, sample_dir).generate()
        assert report.totals["GLOBAL_POWER_EVENTS"] == 6
        assert report.totals["BSQ_CACHE_REFERENCE"] == 2
