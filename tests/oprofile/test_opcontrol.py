"""Unit tests for profiler configuration."""

import pytest

from repro.errors import ConfigError
from repro.oprofile.opcontrol import EventSpec, OprofileConfig


class TestEventSpec:
    def test_to_counter_config(self):
        spec = EventSpec("GLOBAL_POWER_EVENTS", 90_000)
        cc = spec.to_counter_config()
        assert cc.period == 90_000
        assert cc.event.name == "GLOBAL_POWER_EVENTS"

    def test_unknown_event(self):
        with pytest.raises(ConfigError):
            EventSpec("BOGUS", 90_000).to_counter_config()


class TestOprofileConfig:
    def test_requires_events(self):
        with pytest.raises(ConfigError, match="at least one"):
            OprofileConfig(events=())

    def test_duplicate_events_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            OprofileConfig(
                events=(
                    EventSpec("GLOBAL_POWER_EVENTS", 90_000),
                    EventSpec("GLOBAL_POWER_EVENTS", 45_000),
                )
            )

    def test_validates_event_periods(self):
        with pytest.raises(ConfigError):
            OprofileConfig(events=(EventSpec("GLOBAL_POWER_EVENTS", 1),))

    def test_tiny_buffer_rejected(self):
        with pytest.raises(ConfigError, match="buffer"):
            OprofileConfig(
                events=(EventSpec("GLOBAL_POWER_EVENTS", 90_000),),
                buffer_capacity=10,
            )

    def test_bad_daemon_period(self):
        with pytest.raises(ConfigError, match="daemon"):
            OprofileConfig(
                events=(EventSpec("GLOBAL_POWER_EVENTS", 90_000),),
                daemon_period=0,
            )

    def test_paper_config_has_two_events(self):
        cfg = OprofileConfig.paper_config(90_000)
        names = [e.event_name for e in cfg.events]
        assert names == ["GLOBAL_POWER_EVENTS", "BSQ_CACHE_REFERENCE"]
        assert cfg.primary_period == 90_000
        assert cfg.events[1].period < 90_000

    @pytest.mark.parametrize("period", [45_000, 90_000, 450_000])
    def test_paper_config_periods(self, period):
        cfg = OprofileConfig.paper_config(period)
        assert cfg.primary_period == period
        # Cache period scales but never below the event minimum.
        assert cfg.events[1].period >= 500
