"""Unit tests for the OProfile daemon: classification, costs, sample files."""

import pytest

from repro.errors import ProfilerError
from repro.oprofile.daemon import DaemonCosts, OprofileDaemon, build_daemon_image
from repro.oprofile.kmodule import OprofileKernelModule
from repro.oprofile.opcontrol import EventSpec, OprofileConfig
from repro.os.binary import standard_libraries
from repro.os.kernel import Kernel
from repro.os.loader import ProgramLoader
from repro.profiling.model import RawSample
from repro.profiling.samplefile import SampleFileReader


def config():
    return OprofileConfig(
        events=(
            EventSpec("GLOBAL_POWER_EVENTS", 90_000),
            EventSpec("BSQ_CACHE_REFERENCE", 1_000),
        )
    )


@pytest.fixture
def machine(tmp_path):
    kernel = Kernel()
    proc = kernel.spawn("java")
    loader = ProgramLoader(proc.address_space)
    libc_vma = loader.load_library(standard_libraries()[0])
    heap_vma = loader.map_anonymous(0x100000)
    km = OprofileKernelModule(config())
    daemon = OprofileDaemon(kernel, km, config(), tmp_path / "samples")
    return kernel, proc, libc_vma, heap_vma, km, daemon


def raw(pc, task_id, event="GLOBAL_POWER_EVENTS", kernel_mode=False):
    return RawSample(
        pc=pc, event_name=event, task_id=task_id,
        kernel_mode=kernel_mode, cycle=0,
    )


class TestClassify:
    def test_kernel_sample(self, machine):
        kernel, proc, *_, daemon = machine
        s = raw(kernel.kernel_pc("schedule"), proc.pid, kernel_mode=True)
        assert daemon.classify(s) == daemon.KERNEL

    def test_kernel_address_without_flag(self, machine):
        kernel, proc, *_, daemon = machine
        s = raw(kernel.kernel_pc("schedule"), proc.pid)
        assert daemon.classify(s) == daemon.KERNEL

    def test_file_backed_sample(self, machine):
        _, proc, libc_vma, _, _, daemon = machine
        assert daemon.classify(raw(libc_vma.start + 0x1000, proc.pid)) == daemon.FILE

    def test_anon_sample(self, machine):
        _, proc, _, heap_vma, _, daemon = machine
        assert daemon.classify(raw(heap_vma.start + 64, proc.pid)) == daemon.ANON

    def test_unknown_task_is_anon(self, machine):
        *_, daemon = machine
        assert daemon.classify(raw(0x1000, 999999)) == daemon.ANON

    def test_unmapped_pc_is_anon(self, machine):
        _, proc, *_, daemon = machine
        assert daemon.classify(raw(0x300, proc.pid)) == daemon.ANON


class TestWakeup:
    def test_requires_start(self, machine):
        *_, daemon = machine
        with pytest.raises(ProfilerError, match="not started"):
            daemon.wakeup()

    def test_empty_buffer_costs_only_wakeup(self, machine):
        *_, daemon = machine
        daemon.start()
        work = daemon.wakeup()
        assert work.total == daemon.costs.wakeup
        daemon.stop()

    def test_processing_writes_samples_and_charges_costs(self, machine):
        kernel, proc, libc_vma, heap_vma, km, daemon = machine
        daemon.start()
        km.buffer.append(raw(libc_vma.start + 0x1000, proc.pid))
        km.buffer.append(raw(heap_vma.start + 8, proc.pid))
        km.buffer.append(
            raw(kernel.kernel_pc("schedule"), proc.pid, kernel_mode=True)
        )
        work = daemon.wakeup()
        assert daemon.stats.file_samples == 1
        assert daemon.stats.anon_samples == 1
        assert daemon.stats.kernel_samples == 1
        assert daemon.stats.samples_logged == 3
        c = daemon.costs
        expected = (
            c.wakeup + c.resolve * 2 + c.anon_extra + c.kernel_sample
            + c.write_per_sample * 3 + c.flush
        )
        assert work.total == expected
        daemon.stop()

    def test_anon_path_costs_more_than_file_path(self, machine):
        *_, daemon = machine
        assert daemon.costs.anon_extra > 0
        assert (
            daemon.costs.resolve + daemon.costs.anon_extra
            > daemon.costs.resolve
        )

    def test_samples_routed_to_event_files(self, machine, tmp_path):
        _, proc, libc_vma, _, km, daemon = machine
        daemon.start()
        km.buffer.append(raw(libc_vma.start, proc.pid, "GLOBAL_POWER_EVENTS"))
        km.buffer.append(raw(libc_vma.start, proc.pid, "BSQ_CACHE_REFERENCE"))
        daemon.wakeup()
        daemon.stop()
        time_file = SampleFileReader(daemon.sample_file("GLOBAL_POWER_EVENTS"))
        miss_file = SampleFileReader(daemon.sample_file("BSQ_CACHE_REFERENCE"))
        assert len(time_file) == 1
        assert len(miss_file) == 1
        assert miss_file.event_name == "BSQ_CACHE_REFERENCE"

    def test_unconfigured_event_rejected(self, machine):
        _, proc, libc_vma, _, km, daemon = machine
        daemon.start()
        km.buffer.append(raw(libc_vma.start, proc.pid, event="INSTR_RETIRED"))
        with pytest.raises(ProfilerError, match="unconfigured"):
            daemon.wakeup()

    def test_stop_performs_final_drain(self, machine):
        _, proc, libc_vma, _, km, daemon = machine
        daemon.start()
        km.buffer.append(raw(libc_vma.start, proc.pid))
        daemon.stop()
        assert daemon.stats.samples_logged == 1

    def test_double_start_rejected(self, machine):
        *_, daemon = machine
        daemon.start()
        with pytest.raises(ProfilerError, match="already started"):
            daemon.start()


class TestBatchedDrain:
    def _mixed_stream(self, machine, n=40):
        kernel, proc, libc_vma, heap_vma, *_ = machine
        kpc = kernel.kernel_pc("schedule")
        out = []
        for i in range(n):
            if i % 4 == 0:
                out.append(raw(kpc, proc.pid, kernel_mode=True))
            elif i % 4 == 1:
                out.append(raw(libc_vma.start + 16 * i, proc.pid))
            elif i % 4 == 2:
                out.append(raw(heap_vma.start + 8 * i, proc.pid))
            else:
                out.append(
                    raw(libc_vma.start + i, proc.pid, "BSQ_CACHE_REFERENCE")
                )
        return out

    def test_classify_chunk_agrees_with_classify(self, machine):
        *_, daemon = machine
        stream = self._mixed_stream(machine)
        assert daemon.classify_chunk(stream) == [
            daemon.classify(s) for s in stream
        ]

    def test_batched_drain_matches_sequential(self, machine, tmp_path):
        kernel, *_ , km, daemon = machine
        stream = self._mixed_stream(machine)
        results = []
        for batch in (False, True):
            km2 = OprofileKernelModule(config())
            d = OprofileDaemon(
                kernel, km2, config(), tmp_path / f"batch-{batch}",
                batch=batch,
            )
            for s in stream:
                km2.buffer.append(s)
            d.start()
            work = d.wakeup()
            d.stop()
            files = {
                ev: d.sample_file(ev).read_bytes()
                for ev in ("GLOBAL_POWER_EVENTS", "BSQ_CACHE_REFERENCE")
            }
            results.append((work.total, list(work.by_symbol.items()),
                            d.stats, files))
        assert results[0] == results[1]

    def test_chunked_drain_crosses_chunk_boundary(self, machine, tmp_path):
        """A buffer larger than one drain chunk is fully drained in one
        wakeup, with per-sample costs intact."""
        import repro.oprofile.daemon as daemon_mod
        kernel, proc, libc_vma, *_ = machine
        km2 = OprofileKernelModule(
            OprofileConfig(
                events=(EventSpec("GLOBAL_POWER_EVENTS", 90_000),),
                buffer_capacity=64,
            )
        )
        d = OprofileDaemon(
            kernel, km2, km2.config, tmp_path / "chunked", batch=True
        )
        old_chunk = daemon_mod.DRAIN_CHUNK_RECORDS
        daemon_mod.DRAIN_CHUNK_RECORDS = 8
        try:
            for i in range(20):
                km2.buffer.append(raw(libc_vma.start + i, proc.pid))
            d.start()
            work = d.wakeup()
            d.stop()
        finally:
            daemon_mod.DRAIN_CHUNK_RECORDS = old_chunk
        assert len(km2.buffer) == 0
        assert d.stats.samples_logged == 20
        c = d.costs
        assert work.total == (
            c.wakeup + c.resolve * 20 + c.write_per_sample * 20 + c.flush
        )


class TestDaemonImage:
    def test_symbols_present(self):
        img = build_daemon_image()
        for sym in ("opd_main_loop", "opd_anon_mapping_log",
                    "opd_jit_heap_check", "opd_sfile_write"):
            img.find_symbol(sym)
