"""Tests for session archiving and cross-session diffing."""

import pytest

from repro.errors import ProfilerError
from repro.oprofile.archive import SessionStore
from repro.system.api import base_run, oprofile_profile, viprof_profile
from repro.workloads import by_name

SCALE = 0.08


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("sessions")
    store = SessionStore(root)
    v = viprof_profile(by_name("fop"), period=45_000, time_scale=SCALE)
    o = oprofile_profile(by_name("fop"), period=45_000, time_scale=SCALE)
    v2 = viprof_profile(
        by_name("fop"), period=45_000, time_scale=SCALE, seed=99
    )
    store.archive(v, "fop-viprof")
    store.archive(o, "fop-oprofile")
    store.archive(v2, "fop-viprof-seed99")
    return store


class TestArchive:
    def test_sessions_listed(self, store):
        labels = [s.label for s in store.sessions()]
        assert labels == sorted(
            ["fop-viprof", "fop-oprofile", "fop-viprof-seed99"]
        )

    def test_metadata(self, store):
        s = store.get("fop-viprof")
        assert s.benchmark == "fop"
        assert s.mode == "viprof"
        assert s.period == 45_000
        assert s.meta["registration"] is not None

    def test_duplicate_label_rejected(self, store):
        v = viprof_profile(by_name("fop"), time_scale=SCALE)
        with pytest.raises(ProfilerError, match="already exists"):
            store.archive(v, "fop-viprof")

    def test_unprofiled_run_rejected(self, store):
        with pytest.raises(ProfilerError, match="unprofiled"):
            store.archive(base_run(by_name("fop"), time_scale=SCALE), "base")

    def test_unknown_label(self, store):
        with pytest.raises(ProfilerError, match="no archived session"):
            store.get("nope")


class TestReplayResolution:
    def test_viprof_report_from_archive(self, store):
        report = store.report("fop-viprof")
        assert any(r.image == "JIT.App" for r in report.rows)
        assert report.totals["GLOBAL_POWER_EVENTS"] > 0

    def test_oprofile_report_from_archive(self, store):
        report = store.report("fop-oprofile")
        assert any(r.image.startswith("anon (range:") for r in report.rows)

    def test_archived_report_matches_live_report(self, store, tmp_path):
        """Archival round trip: re-resolving archived samples reproduces
        the live run's report exactly (determinism of the rebuilt
        context)."""
        live = viprof_profile(
            by_name("fop"), period=45_000, time_scale=SCALE,
            session_dir=tmp_path / "live",
        )
        store.archive(live, "fop-roundtrip")
        archived_table = store.report("fop-roundtrip").format_table()
        live_table = live.viprof_report().report.format_table()
        assert archived_table == live_table


class TestCrossSessionDiff:
    def test_diff_same_config_different_seed(self, store):
        d = store.diff("fop-viprof", "fop-viprof-seed99")
        assert d.rows
        # Same workload model, different schedule: top symbols overlap but
        # shares move.
        assert any(abs(r.delta) > 0 for r in d.rows)

    def test_diff_mode_mismatch_is_still_comparable(self, store):
        """VIProf vs OProfile on the same run config: the diff exposes the
        attribution gap (JIT.App rows appear; anon rows vanish)."""
        d = store.diff("fop-oprofile", "fop-viprof")
        appeared = {r.image for r in d.appeared()}
        vanished = {r.image for r in d.vanished()}
        assert any(i == "JIT.App" for i in appeared)
        assert any(i.startswith("anon (range:") for i in vanished)
