"""Unit tests for the fault-injection core: arming, counting, firing."""

import random

import pytest

from repro.errors import InjectedFault, ProfilerError
from repro.faults import (
    ALL_FAULT_POINT_NAMES,
    FAULT_POINTS,
    WRITER_SPILL,
    CODEMAP_WRITE,
    FaultPlan,
    arm,
    armed,
    current,
    fire,
    point_named,
)


class TestRegistry:
    def test_every_point_has_site_and_description(self):
        for p in FAULT_POINTS:
            assert p.name and p.site and p.description

    def test_names_are_unique(self):
        assert len(set(ALL_FAULT_POINT_NAMES)) == len(FAULT_POINTS)

    def test_point_named_round_trips(self):
        for name in ALL_FAULT_POINT_NAMES:
            assert point_named(name).name == name

    def test_unknown_point_rejected(self):
        with pytest.raises(ProfilerError, match="unknown fault point"):
            point_named("made.up")

    def test_plan_validates_point_and_hit(self):
        with pytest.raises(ProfilerError, match="unknown fault point"):
            FaultPlan("made.up")
        with pytest.raises(ProfilerError, match="hit must be >= 1"):
            FaultPlan(WRITER_SPILL, hit=0)


class TestDisarmed:
    def test_disarmed_is_the_default(self):
        assert not armed()
        assert current() is None

    def test_fire_is_a_noop_when_disarmed(self):
        fire(WRITER_SPILL)  # must not raise or count anything
        assert current() is None


class TestObserveMode:
    def test_counts_without_firing(self):
        with arm() as inj:
            for _ in range(3):
                fire(WRITER_SPILL)
            fire(CODEMAP_WRITE)
            assert inj.hits == {WRITER_SPILL: 3, CODEMAP_WRITE: 1}
            assert inj.fired is None
        assert not armed()

    def test_effects_never_run_in_observe_mode(self):
        ran = []
        with arm():
            fire(WRITER_SPILL, effect=lambda rng: ran.append(rng))
        assert ran == []


class TestFiring:
    def test_fires_at_exactly_the_target_hit(self):
        with arm(FaultPlan(WRITER_SPILL, hit=3)) as inj:
            fire(WRITER_SPILL)
            fire(WRITER_SPILL)
            with pytest.raises(InjectedFault) as exc:
                fire(WRITER_SPILL)
            assert exc.value.point == WRITER_SPILL
            assert exc.value.hit == 3
            assert inj.fired is exc.value

    def test_other_points_do_not_trip_the_plan(self):
        with arm(FaultPlan(WRITER_SPILL, hit=1)) as inj:
            for _ in range(5):
                fire(CODEMAP_WRITE)
            assert inj.fired is None

    def test_effect_runs_once_with_seeded_rng(self):
        draws = []
        with arm(FaultPlan(WRITER_SPILL, hit=1, seed=99)):
            with pytest.raises(InjectedFault):
                fire(WRITER_SPILL, effect=lambda rng: draws.append(
                    rng.randrange(1 << 30)
                ))
        assert draws == [random.Random(99).randrange(1 << 30)]

    def test_fires_at_most_once(self):
        # A site may be reached again while the harness unwinds; the
        # injector must not raise a second time.
        with arm(FaultPlan(WRITER_SPILL, hit=1)) as inj:
            with pytest.raises(InjectedFault):
                fire(WRITER_SPILL)
            fire(WRITER_SPILL)
            assert inj.hits[WRITER_SPILL] == 2
            assert inj.fired is not None

    def test_nested_arming_rejected(self):
        with arm():
            with pytest.raises(ProfilerError, match="already armed"):
                with arm():
                    pass  # pragma: no cover
        assert not armed()

    def test_disarmed_after_exception(self):
        with pytest.raises(InjectedFault):
            with arm(FaultPlan(WRITER_SPILL)):
                fire(WRITER_SPILL)
        assert not armed()
