"""Integration-y unit tests for the JikesVM facade: compilation flow, step
streams, GC orchestration, hook firing."""

import itertools

import pytest

from repro.jvm.bootimage import build_boot_image
from repro.jvm.compiler import CodeBody, CompilerTier
from repro.jvm.heap import Heap
from repro.jvm.machine import (
    AGENT_IMAGE_NAME,
    JIT_APP_IMAGE_LABEL,
    JikesVM,
    StepKind,
    VmHooks,
)
from repro.profiling.model import Layer
from tests.conftest import make_tiny_workload

BOOT_BASE = 0x6000_0000


def fake_resolver(image, symbol):
    # Deterministic fake addresses per (image, symbol).
    h = abs(hash((image, symbol))) % 0x10000
    return 0x4000_0000 + h * 0x100, 0x200


def make_vm(workload=None, hooks=None, nursery=64 * 1024):
    wl = workload or make_tiny_workload(nursery_bytes=nursery)
    heap = Heap(
        nursery_base=BOOT_BASE + 0x80_0000,
        nursery_size=wl.nursery_bytes,
        mature_base=BOOT_BASE + 0x100_0000,
        mature_size=wl.mature_bytes,
    )
    return JikesVM(
        boot=build_boot_image(),
        boot_base=BOOT_BASE,
        heap=heap,
        workload=wl,
        native_resolver=fake_resolver,
        seed=5,
        hooks=hooks,
    )


def take_steps(vm, n):
    return list(itertools.islice(vm.run(), n))


class RecordingHooks(VmHooks):
    def __init__(self):
        self.startup = []
        self.compiles = []
        self.moves = []
        self.pre_gcs = []
        self.post_gcs = []
        self.exits = []

    def on_startup(self, heap_bounds):
        self.startup.append(heap_bounds)
        return 11

    def on_compile(self, body):
        self.compiles.append(body)
        return 13

    def on_code_move(self, body, old_address):
        self.moves.append((body, old_address))
        return 3

    def pre_gc(self, closing_epoch):
        self.pre_gcs.append(closing_epoch)
        return 17

    def post_gc(self, new_epoch):
        self.post_gcs.append(new_epoch)
        return 7

    def on_exit(self, final_epoch):
        self.exits.append(final_epoch)
        return 19


class TestStepStream:
    def test_stream_starts_with_startup_classloading(self):
        vm = make_vm()
        steps = take_steps(vm, 5)
        assert steps[0].kind is StepKind.VM
        assert steps[0].truth.layer is Layer.VM

    def test_app_steps_point_into_code_bodies(self):
        """Checked during iteration: a yielded APP step's PC must lie in a
        then-live code body (bodies move later, so post-hoc checks would be
        stale)."""
        vm = make_vm()
        checked = 0
        for step in itertools.islice(vm.run(), 300):
            if step.kind is StepKind.APP:
                body = next(
                    b for b in vm.code_bodies() if b.contains(step.pc)
                )
                assert step.code_len == body.size
                assert step.truth.image == JIT_APP_IMAGE_LABEL
                checked += 1
        assert checked > 0

    def test_step_cycles_bounded(self):
        vm = make_vm()
        for step in take_steps(vm, 500):
            assert 0 < step.cycles <= 2000

    def test_methods_get_compiled_on_first_invocation(self):
        vm = make_vm()
        take_steps(vm, 200)
        assert vm.stats.compilations > 0
        assert vm.body_for(0) is not None

    def test_recompilation_reaches_opt_tiers(self):
        wl = make_tiny_workload(n=2, burst=(20, 40))
        vm = make_vm(workload=wl)
        tiers_seen: dict[int, set[CompilerTier]] = {}
        for _ in itertools.islice(vm.run(), 4000):
            for i in range(2):
                b = vm.body_for(i)
                if b is not None:
                    tiers_seen.setdefault(i, set()).add(b.tier)
        assert any(
            t.is_opt for tiers in tiers_seen.values() for t in tiers
        ), "no method ever reached an optimizing tier"
        assert vm.stats.opt_compilations > 0

    def test_gc_triggered_by_allocation(self):
        vm = make_vm(nursery=32 * 1024)
        take_steps(vm, 2000)
        assert vm.collector.stats.collections > 0
        assert vm.epoch == vm.collector.stats.collections

    def test_gc_emits_memset_native_step(self):
        vm = make_vm(nursery=32 * 1024)
        symbols = {
            s.truth.symbol for s in take_steps(vm, 2000)
            if s.kind is StepKind.NATIVE
        }
        assert "memset" in symbols

    def test_deterministic_streams(self):
        s1 = [
            (s.pc, s.cycles, s.truth.symbol)
            for s in take_steps(make_vm(), 400)
        ]
        s2 = [
            (s.pc, s.cycles, s.truth.symbol)
            for s in take_steps(make_vm(), 400)
        ]
        assert s1 == s2

    def test_vm_steps_inside_boot_image(self):
        vm = make_vm()
        boot_end = BOOT_BASE + vm.boot.image.size
        for step in take_steps(vm, 400):
            if step.kind is StepKind.VM:
                assert BOOT_BASE <= step.pc < boot_end


class TestOnStackReplacement:
    def test_long_invocation_methods_recompile_via_osr(self):
        from repro.jvm.machine import OSR_INVOCATION_CYCLES
        from tests.conftest import make_tiny_methods

        methods = make_tiny_methods(2)
        for m in methods:
            m.cycles_per_invocation = OSR_INVOCATION_CYCLES + 2_000
        from repro.workloads.base import Workload

        wl = Workload(
            name="osr", base_time_s=0.05, methods=methods,
            nursery_bytes=64 * 1024, mature_bytes=2 * 1024 * 1024,
            burst=(20, 40), seed=13,
        )
        vm = make_vm(workload=wl)
        take_steps(vm, 4000)
        assert vm.stats.osr_compilations > 0

    def test_osr_emits_figure1_frames(self):
        from repro.jvm.machine import OSR_INVOCATION_CYCLES
        from tests.conftest import make_tiny_methods
        from repro.workloads.base import Workload

        methods = make_tiny_methods(2)
        for m in methods:
            m.cycles_per_invocation = OSR_INVOCATION_CYCLES + 2_000
        wl = Workload(
            name="osr2", base_time_s=0.05, methods=methods,
            nursery_bytes=64 * 1024, mature_bytes=2 * 1024 * 1024,
            burst=(20, 40), seed=13,
        )
        vm = make_vm(workload=wl)
        symbols = {s.truth.symbol for s in take_steps(vm, 4000)}
        assert any("getOsrPrologueLength" in s for s in symbols)
        assert any("finalizeOsrSpecialization" in s for s in symbols)

    def test_short_methods_never_osr(self):
        vm = make_vm()  # tiny methods: 1500 cycles/invocation
        take_steps(vm, 3000)
        assert vm.stats.osr_compilations == 0


class TestHooks:
    def test_startup_registers_heap_bounds(self):
        hooks = RecordingHooks()
        vm = make_vm(hooks=hooks)
        take_steps(vm, 3)
        assert hooks.startup == [vm.heap.bounds]

    def test_compile_hook_sees_every_compilation(self):
        hooks = RecordingHooks()
        vm = make_vm(hooks=hooks)
        take_steps(vm, 500)
        assert len(hooks.compiles) == vm.stats.compilations
        assert all(isinstance(b, CodeBody) for b in hooks.compiles)

    def test_gc_hooks_fire_in_order(self):
        hooks = RecordingHooks()
        vm = make_vm(hooks=hooks, nursery=32 * 1024)
        take_steps(vm, 2000)
        assert hooks.pre_gcs, "no GC happened"
        assert hooks.pre_gcs[0] == 0
        assert hooks.post_gcs[0] == 1
        # pre_gc(epoch e) then post_gc(e+1), pairwise.
        for pre, post in zip(hooks.pre_gcs, hooks.post_gcs):
            assert post == pre + 1

    def test_move_hook_gets_old_address(self):
        hooks = RecordingHooks()
        vm = make_vm(hooks=hooks, nursery=32 * 1024)
        take_steps(vm, 2000)
        assert hooks.moves
        for body, old in hooks.moves:
            assert old != body.address or body.moves > 1

    def test_agent_steps_emitted_for_hook_costs(self):
        hooks = RecordingHooks()
        vm = make_vm(hooks=hooks, nursery=32 * 1024)
        agent_steps = [
            s for s in take_steps(vm, 2000) if s.kind is StepKind.AGENT
        ]
        assert agent_steps
        assert all(s.truth.image == AGENT_IMAGE_NAME for s in agent_steps)

    def test_finish_fires_exit_hook_once(self):
        hooks = RecordingHooks()
        vm = make_vm(hooks=hooks)
        take_steps(vm, 100)
        steps = vm.finish()
        assert hooks.exits == [vm.epoch]
        assert steps and steps[0].kind is StepKind.AGENT
        assert vm.finish() == []

    def test_default_hooks_cost_nothing(self):
        vm = make_vm()  # default VmHooks
        assert not any(
            s.kind is StepKind.AGENT for s in take_steps(vm, 1500)
        )
