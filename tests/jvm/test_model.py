"""Unit tests for the Java method model."""

import pytest

from repro.errors import WorkloadError
from repro.hardware.memory import WorkingSet
from repro.jvm.model import JavaMethod, MethodId


def ws():
    return WorkingSet(base=0x7000_0000, size=4096, seed=1)


class TestMethodId:
    def test_full_name(self):
        mid = MethodId("a.b.C", "run")
        assert mid.full_name == "a.b.C.run"
        assert str(mid) == "a.b.C.run"


class TestJavaMethod:
    def base_kwargs(self):
        return dict(
            mid=MethodId("a.b.C", "run"),
            bytecode_size=100,
            weight=1.0,
            cycles_per_invocation=1000,
            alloc_bytes_per_invocation=50,
            accesses_per_invocation=20,
            working_set=ws(),
        )

    def test_valid(self):
        m = JavaMethod(**self.base_kwargs())
        assert m.full_name == "a.b.C.run"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("bytecode_size", 0),
            ("weight", -0.5),
            ("cycles_per_invocation", 0),
            ("alloc_bytes_per_invocation", -1),
            ("accesses_per_invocation", -1),
        ],
    )
    def test_validation(self, field, value):
        kw = self.base_kwargs()
        kw[field] = value
        with pytest.raises(WorkloadError):
            JavaMethod(**kw)
