"""Unit tests for the adaptive optimization system."""

import pytest

from repro.errors import ConfigError
from repro.jvm.adaptive import AdaptiveSystem, RecompilationLadder
from repro.jvm.compiler import CompilerTier


class TestLadder:
    def test_default_thresholds_increase(self):
        l = RecompilationLadder()
        assert l.opt0_at < l.opt1_at < l.opt2_at

    def test_bad_ladder_rejected(self):
        with pytest.raises(ConfigError):
            RecompilationLadder(opt0_at=100, opt1_at=50, opt2_at=200)

    def test_tier_for(self):
        l = RecompilationLadder(opt0_at=10, opt1_at=100, opt2_at=1000)
        assert l.tier_for(5) is CompilerTier.BASELINE
        assert l.tier_for(10) is CompilerTier.OPT0
        assert l.tier_for(999) is CompilerTier.OPT1
        assert l.tier_for(10_000) is CompilerTier.OPT2


class TestAdaptiveSystem:
    def test_first_invocation_requests_baseline(self):
        aos = AdaptiveSystem()
        assert aos.record_invocations(0, 1) is CompilerTier.BASELINE

    def test_no_recompile_until_threshold(self):
        aos = AdaptiveSystem(ladder=RecompilationLadder(10, 100, 1000))
        aos.record_invocations(0, 1)
        aos.note_compiled(0, CompilerTier.BASELINE)
        assert aos.record_invocations(0, 5) is None

    def test_recompile_at_opt0_threshold(self):
        aos = AdaptiveSystem(ladder=RecompilationLadder(10, 100, 1000))
        aos.record_invocations(0, 1)
        aos.note_compiled(0, CompilerTier.BASELINE)
        assert aos.record_invocations(0, 9) is CompilerTier.OPT0

    def test_big_burst_can_skip_tiers(self):
        aos = AdaptiveSystem(ladder=RecompilationLadder(10, 100, 1000))
        aos.record_invocations(0, 1)
        aos.note_compiled(0, CompilerTier.BASELINE)
        assert aos.record_invocations(0, 5000) is CompilerTier.OPT2

    def test_never_downgrades(self):
        aos = AdaptiveSystem(ladder=RecompilationLadder(10, 100, 1000))
        aos.record_invocations(0, 1)
        aos.note_compiled(0, CompilerTier.OPT2)
        assert aos.record_invocations(0, 50) is None

    def test_methods_tracked_independently(self):
        aos = AdaptiveSystem(ladder=RecompilationLadder(10, 100, 1000))
        aos.record_invocations(0, 1)
        aos.note_compiled(0, CompilerTier.BASELINE)
        assert aos.record_invocations(1, 1) is CompilerTier.BASELINE
        assert aos.invocations(0) == 1
        assert aos.invocations(1) == 1

    def test_invocation_counts_accumulate(self):
        aos = AdaptiveSystem()
        aos.record_invocations(3, 7)
        aos.record_invocations(3, 5)
        assert aos.invocations(3) == 12

    def test_positive_count_required(self):
        aos = AdaptiveSystem()
        with pytest.raises(ConfigError):
            aos.record_invocations(0, 0)

    def test_current_tier_tracking(self):
        aos = AdaptiveSystem()
        assert aos.current_tier(0) is None
        aos.note_compiled(0, CompilerTier.OPT1)
        assert aos.current_tier(0) is CompilerTier.OPT1

    def test_recompilations_counted(self):
        aos = AdaptiveSystem(ladder=RecompilationLadder(10, 100, 1000))
        aos.record_invocations(0, 1)
        aos.note_compiled(0, CompilerTier.BASELINE)
        aos.record_invocations(0, 20)
        assert aos.recompilations_requested == 2
