"""Unit tests for the boot image and RVM.map."""

import pytest

from repro.errors import SymbolError
from repro.jvm.bootimage import (
    BOOT_IMAGE_NAME,
    RvmMap,
    RvmMapEntry,
    VmActivity,
    build_boot_image,
)


class TestBuildBootImage:
    def test_image_is_stripped(self):
        boot = build_boot_image()
        assert boot.image.stripped
        assert boot.image.name == BOOT_IMAGE_NAME

    def test_map_covers_paper_symbols(self):
        boot = build_boot_image()
        for name in (
            "com.ibm.jikesrvm.classloader.VM_NormalMethod.getOsrPrologueLength",
            "com.ibm.jikesrvm.classloader.VM_NormalMethod.hasArrayRead",
            "com.ibm.jikesrvm.opt.VM_OptCompiledMethod.createCodePatchMaps",
            "com.ibm.jikesrvm.opt.VM_OptGenericGCMapIterator.checkForMissedSpills",
            "com.ibm.jikesrvm.VM_MainThread.run",
            "com.ibm.jikesrvm.classloader.VM_NormalMethod.finalizeOsrSpecialization",
            "com.ibm.jikesrvm.opt.VM_OptMachineCodeMap.getMethodForMCOffset",
            "java.util.Vector.trimToSize",
        ):
            boot.rvm_map.find(name)

    def test_every_activity_has_entries(self):
        boot = build_boot_image()
        for act in VmActivity:
            assert boot.entries_for(act)

    def test_entries_within_image(self):
        boot = build_boot_image()
        for e in boot.rvm_map.entries:
            assert 0 <= e.offset
            assert e.offset + e.size <= boot.image.size

    def test_map_resolution_roundtrip(self):
        boot = build_boot_image()
        for e in boot.rvm_map.entries:
            assert boot.rvm_map.resolve(e.offset) is e
            assert boot.rvm_map.resolve(e.offset + e.size - 1) is e

    def test_gap_resolves_none(self):
        boot = build_boot_image()
        assert boot.rvm_map.resolve(0) is None

    def test_deterministic(self):
        a, b = build_boot_image(), build_boot_image()
        assert [e.name for e in a.rvm_map.entries] == [
            e.name for e in b.rvm_map.entries
        ]


class TestRvmMap:
    def test_overlap_rejected(self):
        with pytest.raises(SymbolError, match="overlap"):
            RvmMap(
                [
                    RvmMapEntry(0x100, 0x80, "a"),
                    RvmMapEntry(0x150, 0x40, "b"),
                ]
            )

    def test_find_missing(self):
        m = RvmMap([RvmMapEntry(0x100, 0x80, "a")])
        with pytest.raises(SymbolError):
            m.find("b")

    def test_len(self):
        m = RvmMap([RvmMapEntry(0x100, 0x80, "a")])
        assert len(m) == 1
