"""Property-based tests on collector invariants over random GC/compile
interleavings."""

from hypothesis import given, settings, strategies as st

from repro.jvm.compiler import CompilerTier, JitCompiler
from repro.jvm.gc import CopyingCollector
from repro.jvm.heap import Heap
from tests.conftest import make_tiny_methods

# Each op: ("compile", size_hint) or ("gc", live_data)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("compile"), st.integers(min_value=0, max_value=5)),
        st.tuples(st.just("gc"), st.integers(min_value=0, max_value=0x800)),
        st.tuples(st.just("obsolete"), st.integers(min_value=0, max_value=100)),
    ),
    min_size=1,
    max_size=40,
)


def run_ops(ops, promote_after=2):
    heap = Heap(
        nursery_base=0x6080_0000, nursery_size=0x4_0000,
        mature_base=0x6200_0000, mature_size=0x40_0000,
    )
    gc = CopyingCollector(heap, promote_after=promote_after)
    compiler = JitCompiler()
    methods = make_tiny_methods(6)
    bodies = []
    move_log = []
    for op, arg in ops:
        if op == "compile":
            m = methods[arg % len(methods)]
            job = compiler.plan(m, CompilerTier.BASELINE)
            addr = heap.alloc_code_nursery(job.code_size)
            if addr is None:
                gc.collect(bodies, 0, on_move=lambda b, o: move_log.append((b, o)))
                bodies = [b for b in bodies if not b.obsolete]
                addr = heap.alloc_code_nursery(job.code_size)
            bodies.append(compiler.make_body(job, addr, gc.epoch))
        elif op == "gc":
            if heap.nursery_data_bytes + arg <= heap.nursery.free:
                heap.alloc_data(max(1, arg))
            gc.collect(bodies, min(arg, heap.nursery_data_bytes),
                       on_move=lambda b, o: move_log.append((b, o)))
            bodies = [b for b in bodies if not b.obsolete]
        elif op == "obsolete" and bodies:
            bodies[arg % len(bodies)].obsolete = True
    return heap, gc, bodies, move_log


class TestGcProperties:
    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_live_bodies_never_overlap(self, ops):
        heap, gc, bodies, _ = run_ops(ops)
        live = sorted(
            (b for b in bodies if not b.obsolete), key=lambda b: b.address
        )
        for a, b in zip(live, live[1:]):
            assert a.end <= b.address, "live code bodies overlap"

    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_live_bodies_inside_heap_bounds(self, ops):
        heap, gc, bodies, _ = run_ops(ops)
        lo, hi = heap.bounds
        for b in bodies:
            if not b.obsolete:
                assert lo <= b.address and b.end <= hi

    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_mature_flag_matches_space(self, ops):
        heap, gc, bodies, _ = run_ops(ops)
        for b in bodies:
            if b.obsolete:
                continue
            if b.in_mature:
                assert heap.mature.contains(b.address)
            else:
                assert heap.nursery.contains(b.address)

    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_moves_logged_equal_stats(self, ops):
        _, gc, _, move_log = run_ops(ops)
        assert len(move_log) == gc.stats.code_bodies_moved

    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_every_move_changed_or_kept_valid_address(self, ops):
        """on_move receives the pre-move address and the body holds the
        post-move one; a move to the same address may legally happen when a
        body is the first allocation in a reset nursery."""
        heap, gc, bodies, move_log = run_ops(ops)
        for body, old in move_log:
            assert old > 0
            assert body.address > 0

    @given(ops=OPS, promote_after=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_promotion_threshold_respected(self, ops, promote_after):
        """No body reaches the mature space with fewer survivals than the
        threshold (except direct mature allocations, which run_ops never
        performs)."""
        heap, gc, bodies, _ = run_ops(ops, promote_after=promote_after)
        for b in bodies:
            if b.in_mature and not b.obsolete:
                assert b.survived_gcs >= min(promote_after, b.survived_gcs)
                assert b.survived_gcs >= 1

    @given(ops=OPS)
    @settings(max_examples=40, deadline=None)
    def test_epoch_equals_collections(self, ops):
        _, gc, _, _ = run_ops(ops)
        assert gc.epoch == gc.stats.collections
