"""Unit tests for heap spaces: bump allocation, bounds, occupancy."""

import pytest

from repro.errors import ConfigError, HeapExhaustedError
from repro.jvm.heap import Heap, Space


class TestSpace:
    def test_alloc_bumps_aligned(self):
        s = Space("n", base=0x1000, size=0x1000)
        a = s.alloc(10)
        b = s.alloc(10)
        assert a == 0x1000
        assert b == 0x1010  # 16-byte alignment
        assert s.used == 0x20

    def test_alloc_exhaustion_returns_none(self):
        s = Space("n", base=0x1000, size=0x100)
        assert s.alloc(0x100) is not None
        assert s.alloc(1) is None

    def test_alloc_invalid_size(self):
        s = Space("n", base=0x1000, size=0x100)
        with pytest.raises(ConfigError):
            s.alloc(0)

    def test_reset(self):
        s = Space("n", base=0x1000, size=0x100)
        s.alloc(0x50)
        s.reset()
        assert s.used == 0
        assert s.alloc(0x100) == 0x1000

    def test_contains(self):
        s = Space("n", base=0x1000, size=0x100)
        assert s.contains(0x1000)
        assert s.contains(0x10FF)
        assert not s.contains(0x1100)


def make_heap():
    return Heap(
        nursery_base=0x6080_0000, nursery_size=0x1_0000,
        mature_base=0x6100_0000, mature_size=0x10_0000,
    )


class TestHeap:
    def test_overlapping_spaces_rejected(self):
        with pytest.raises(ConfigError, match="overlap"):
            Heap(0x1000, 0x10000, 0x8000, 0x10000)

    def test_bounds_cover_both_spaces(self):
        h = make_heap()
        lo, hi = h.bounds
        assert lo == 0x6080_0000
        assert hi == 0x6110_0000
        assert h.contains(0x6080_0000)
        assert h.contains(0x6100_0010)
        assert not h.contains(0x6110_0000)

    def test_alloc_data_until_full(self):
        h = make_heap()
        assert h.alloc_data(0x8000)
        assert h.alloc_data(0x8000)
        assert not h.alloc_data(0x10)  # nursery exactly full
        assert h.nursery_data_bytes == 0x1_0000

    def test_data_and_code_share_nursery_cursor(self):
        h = make_heap()
        h.alloc_data(0x100)
        addr = h.alloc_code_nursery(0x40)
        assert addr == 0x6080_0000 + 0x100
        h.alloc_data(0x100)
        addr2 = h.alloc_code_nursery(0x40)
        assert addr2 > addr + 0x100

    def test_alloc_code_nursery_full_returns_none(self):
        h = make_heap()
        h.alloc_data(0x1_0000)
        assert h.alloc_code_nursery(0x40) is None

    def test_alloc_code_mature(self):
        h = make_heap()
        addr = h.alloc_code_mature(0x100)
        assert h.mature.contains(addr)

    def test_mature_exhaustion_raises(self):
        h = make_heap()
        h.alloc_code_mature(0x10_0000)
        with pytest.raises(HeapExhaustedError):
            h.alloc_code_mature(0x10)

    def test_promote_data_and_occupancy(self):
        h = make_heap()
        assert h.mature_occupancy() == 0.0
        h.promote_data(0x8_0000)
        assert 0.49 < h.mature_occupancy() < 0.51
        with pytest.raises(ConfigError):
            h.promote_data(-1)

    def test_nursery_occupancy(self):
        h = make_heap()
        h.alloc_data(0x8000)
        assert 0.49 < h.nursery_occupancy() < 0.51

    def test_total_allocated_accumulates(self):
        h = make_heap()
        h.alloc_data(0x100)
        h.alloc_code_nursery(0x100)
        assert h.total_allocated_bytes == 0x200
