"""Unit tests for the copying collector: moves, promotion, epochs, majors."""

import pytest

from repro.errors import ConfigError
from repro.jvm.compiler import CompilerTier, JitCompiler
from repro.jvm.gc import CopyingCollector
from repro.jvm.heap import Heap
from tests.conftest import make_tiny_methods


def setup(promote_after=2):
    heap = Heap(
        nursery_base=0x6080_0000, nursery_size=0x2_0000,
        mature_base=0x6100_0000, mature_size=0x20_0000,
    )
    gc = CopyingCollector(heap, promote_after=promote_after)
    return heap, gc


def compile_into_nursery(heap, n=3, epoch=0):
    compiler = JitCompiler()
    methods = make_tiny_methods(n)
    bodies = []
    for m in methods:
        job = compiler.plan(m, CompilerTier.BASELINE)
        addr = heap.alloc_code_nursery(job.code_size)
        bodies.append(compiler.make_body(job, addr, epoch))
    return bodies


class TestValidation:
    def test_bad_promote_after(self):
        heap, _ = setup()
        with pytest.raises(ConfigError):
            CopyingCollector(heap, promote_after=0)

    def test_bad_trigger(self):
        heap, _ = setup()
        with pytest.raises(ConfigError):
            CopyingCollector(heap, mature_trigger=0.0)

    def test_negative_live_data(self):
        heap, gc = setup()
        with pytest.raises(ConfigError):
            gc.collect([], live_data_bytes=-1)


class TestMinorCollection:
    def test_epoch_advances(self):
        _, gc = setup()
        assert gc.epoch == 0
        gc.collect([], 0)
        assert gc.epoch == 1

    def test_nursery_emptied_and_survivors_moved(self):
        heap, gc = setup()
        heap.alloc_data(0x1000)
        bodies = compile_into_nursery(heap, 3)
        old_addrs = [b.address for b in bodies]
        moves = []
        gc.collect(bodies, live_data_bytes=0x100, on_move=lambda b, o: moves.append((b, o)))
        assert len(moves) == 3
        for b, old in zip(bodies, old_addrs):
            assert b.address != old
            assert b.survived_gcs == 1
        assert heap.nursery_data_bytes == 0

    def test_young_survivors_stay_in_nursery(self):
        heap, gc = setup(promote_after=2)
        bodies = compile_into_nursery(heap, 2)
        gc.collect(bodies, 0)
        for b in bodies:
            assert not b.in_mature
            assert heap.nursery.contains(b.address)

    def test_promotion_after_surviving_enough(self):
        heap, gc = setup(promote_after=2)
        bodies = compile_into_nursery(heap, 2)
        gc.collect(bodies, 0)
        gc.collect(bodies, 0)
        for b in bodies:
            assert b.in_mature
            assert heap.mature.contains(b.address)

    def test_mature_bodies_do_not_move_in_minor(self):
        heap, gc = setup(promote_after=1)
        bodies = compile_into_nursery(heap, 2)
        gc.collect(bodies, 0)  # promotes all
        addrs = [b.address for b in bodies]
        gc.collect(bodies, 0)
        assert [b.address for b in bodies] == addrs

    def test_obsolete_bodies_reclaimed_not_moved(self):
        heap, gc = setup()
        bodies = compile_into_nursery(heap, 2)
        bodies[0].obsolete = True
        addr0 = bodies[0].address
        moves = []
        gc.collect(bodies, 0, on_move=lambda b, o: moves.append(b))
        assert bodies[0] not in moves
        assert bodies[0].address == addr0  # untouched garbage
        assert gc.stats.obsolete_bodies_reclaimed == 1

    def test_data_promotion_accounted(self):
        heap, gc = setup()
        heap.alloc_data(0x1000)
        gc.collect([], live_data_bytes=0x400)
        assert heap.mature_data_bytes == 0x400
        assert gc.stats.data_bytes_promoted == 0x400

    def test_copy_preserves_address_order(self):
        heap, gc = setup()
        bodies = compile_into_nursery(heap, 4)
        gc.collect(bodies, 0)
        addrs = [b.address for b in bodies]
        assert addrs == sorted(addrs)

    def test_no_overlap_after_collection(self):
        heap, gc = setup()
        heap.alloc_data(0x800)
        bodies = compile_into_nursery(heap, 5)
        gc.collect(bodies, 0x100)
        spans = sorted((b.address, b.end) for b in bodies)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_work_reports_zeroed_nursery(self):
        heap, gc = setup()
        heap.alloc_data(0x5000)
        work = gc.collect([], 0)
        assert work.zeroed_bytes == 0x5000
        assert not work.major


class TestMajorCollection:
    def test_major_triggered_by_mature_occupancy(self):
        heap, gc = setup()
        heap.promote_data(int(0x20_0000 * 0.9))
        assert gc.needs_major()
        work = gc.collect([], 0)
        assert work.major
        assert gc.stats.major_collections == 1

    def test_major_compacts_mature_code_over_garbage(self):
        heap, gc = setup(promote_after=1)
        bodies = compile_into_nursery(heap, 3)
        gc.collect(bodies, 0)  # all promoted
        # Kill the first body: compaction should slide the others down.
        bodies[0].obsolete = True
        survivor_addrs = [b.address for b in bodies[1:]]
        heap.promote_data(int(0x20_0000 * 0.95))
        moves = []
        gc.collect(bodies, 0, on_move=lambda b, o: moves.append(b))
        assert all(b in moves for b in bodies[1:])
        assert bodies[0] not in moves
        assert bodies[1].address == heap.mature.base
        assert [b.address for b in bodies[1:]] != survivor_addrs

    def test_major_discards_dead_mature_data(self):
        heap, gc = setup()
        heap.promote_data(0x1C_0000)
        before = heap.mature_data_bytes
        gc.collect([], 0)
        assert heap.mature_data_bytes < before
