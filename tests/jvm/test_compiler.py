"""Unit tests for compiler tiers and code bodies."""

import pytest

from repro.errors import CompilationError
from repro.jvm.compiler import CodeBody, CompilerTier, JitCompiler
from tests.conftest import make_tiny_methods


def method():
    return make_tiny_methods(1)[0]


class TestCompilerTier:
    def test_ordering_of_levels(self):
        tiers = [CompilerTier.BASELINE, CompilerTier.OPT0,
                 CompilerTier.OPT1, CompilerTier.OPT2]
        levels = [t.level for t in tiers]
        assert levels == sorted(levels)

    def test_higher_tiers_cost_more_to_compile(self):
        assert (
            CompilerTier.BASELINE.compile_cycles_per_bc
            < CompilerTier.OPT0.compile_cycles_per_bc
            < CompilerTier.OPT1.compile_cycles_per_bc
            < CompilerTier.OPT2.compile_cycles_per_bc
        )

    def test_higher_tiers_run_faster(self):
        assert (
            CompilerTier.BASELINE.cpi_factor
            > CompilerTier.OPT0.cpi_factor
            > CompilerTier.OPT1.cpi_factor
            > CompilerTier.OPT2.cpi_factor
        )

    def test_next_tier_chain(self):
        assert CompilerTier.BASELINE.next_tier() is CompilerTier.OPT0
        assert CompilerTier.OPT2.next_tier() is None

    def test_is_opt(self):
        assert not CompilerTier.BASELINE.is_opt
        assert CompilerTier.OPT1.is_opt


class TestJitCompiler:
    def test_plan_size_scales_with_bytecode(self):
        c = JitCompiler()
        m = method()
        job = c.plan(m, CompilerTier.BASELINE)
        assert job.code_size >= m.bytecode_size * CompilerTier.BASELINE.expansion
        assert job.code_size % 16 == 0

    def test_plan_cost_scales_with_tier(self):
        c = JitCompiler()
        m = method()
        base = c.plan(m, CompilerTier.BASELINE)
        opt = c.plan(m, CompilerTier.OPT2)
        assert opt.cycles > base.cycles

    def test_make_body(self):
        c = JitCompiler()
        job = c.plan(method(), CompilerTier.BASELINE)
        body = c.make_body(job, address=0x6080_0000, epoch=3)
        assert body.address == 0x6080_0000
        assert body.compiled_epoch == 3
        assert body.contains(0x6080_0000)
        assert not body.contains(body.end)

    def test_make_body_bad_address(self):
        c = JitCompiler()
        job = c.plan(method(), CompilerTier.BASELINE)
        with pytest.raises(CompilationError):
            c.make_body(job, address=0, epoch=0)


class TestCodeBody:
    def test_relocate(self):
        c = JitCompiler()
        job = c.plan(method(), CompilerTier.BASELINE)
        body = c.make_body(job, address=0x6080_0000, epoch=0)
        old = body.relocate(0x6100_0000, promoted=False)
        assert old == 0x6080_0000
        assert body.address == 0x6100_0000
        assert body.survived_gcs == 1
        assert body.moves == 1
        assert not body.in_mature

    def test_relocate_promotion(self):
        c = JitCompiler()
        job = c.plan(method(), CompilerTier.OPT1)
        body = c.make_body(job, address=0x6080_0000, epoch=0)
        body.relocate(0x6100_0000, promoted=True)
        assert body.in_mature
