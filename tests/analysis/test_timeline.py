"""Tests for sample timelines and phase detection."""

import pytest

from repro.analysis.timeline import build_timeline
from repro.errors import ConfigError
from repro.profiling.model import RawSample, ResolvedSample


def sample(cycle, symbol, image="JIT.App", event="GLOBAL_POWER_EVENTS"):
    raw = RawSample(
        pc=0x1000, event_name=event, task_id=1, kernel_mode=False,
        cycle=cycle,
    )
    return ResolvedSample(raw=raw, image=image, symbol=symbol)


class TestBuildTimeline:
    def test_windows_partition_by_cycle(self):
        samples = [sample(10, "a"), sample(110, "b"), sample(150, "b")]
        tl = build_timeline(samples, window_cycles=100)
        assert len(tl.windows) == 2
        assert tl.windows[0].counts == {("JIT.App", "a"): 1}
        assert tl.windows[1].counts == {("JIT.App", "b"): 2}

    def test_empty_samples(self):
        tl = build_timeline([], window_cycles=100)
        assert tl.windows == []

    def test_other_events_filtered(self):
        samples = [sample(10, "a"), sample(20, "a", event="BSQ_CACHE_REFERENCE")]
        tl = build_timeline(samples, window_cycles=100)
        assert tl.windows[0].total == 1

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigError):
            build_timeline([], window_cycles=0)

    def test_dominant(self):
        samples = [sample(10, "a"), sample(20, "b"), sample(30, "b")]
        tl = build_timeline(samples, window_cycles=100)
        assert tl.windows[0].dominant() == ("JIT.App", "b")


class TestTransitions:
    def test_phase_shift_detected(self):
        samples = (
            [sample(i * 10, "phase1") for i in range(10)]
            + [sample(100 + i * 10, "phase2") for i in range(10)]
        )
        tl = build_timeline(samples, window_cycles=100)
        assert tl.transitions(min_divergence=0.5) == [1]

    def test_stable_behaviour_no_transitions(self):
        samples = [sample(i * 10, "steady") for i in range(50)]
        tl = build_timeline(samples, window_cycles=100)
        assert tl.transitions() == []

    def test_divergence_validation(self):
        tl = build_timeline([sample(1, "a")], window_cycles=10)
        with pytest.raises(ConfigError):
            tl.transitions(min_divergence=0.0)

    def test_partial_shift_below_threshold(self):
        # 50/50 -> 60/40 is a small move; 50/50 -> 100/0 is a phase change.
        w1 = [sample(i, "a") for i in range(5)] + [
            sample(5 + i, "b") for i in range(5)
        ]
        w2 = [sample(100 + i, "a") for i in range(6)] + [
            sample(110 + i, "b") for i in range(4)
        ]
        tl = build_timeline(w1 + w2, window_cycles=100)
        assert tl.transitions(min_divergence=0.4) == []
        assert tl.transitions(min_divergence=0.05) == [1]


class TestEndToEndTimeline:
    def test_phased_workload_shows_transitions(self, tmp_path):
        """A multi-phase workload's VIProf timeline shows its phases."""
        from repro import viprof_profile
        from tests.conftest import make_tiny_workload

        run = viprof_profile(
            make_tiny_workload(base_time_s=0.8, phases=3), period=6_000,
            session_dir=tmp_path, noise=False,
        )
        post = run.viprof_report().post
        resolved = [post.resolve(s) for s in post.read_samples()]
        tl = build_timeline(resolved, window_cycles=300_000)
        assert len(tl.windows) >= 5
        # Behaviour genuinely shifts across the run.
        dominants = {d for d in tl.dominant_sequence() if d is not None}
        assert len(dominants) >= 2
        assert "window" in tl.format_table()
