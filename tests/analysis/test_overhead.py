"""Tests for overhead decomposition."""

import pytest

from repro import base_run, oprofile_profile, viprof_profile
from repro.analysis import decompose_overhead
from tests.conftest import make_tiny_workload


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    kw = dict(time_scale=1.0, seed=5, noise=False, background=False)
    base = base_run(make_tiny_workload(base_time_s=0.3), **kw)
    oprof = oprofile_profile(
        make_tiny_workload(base_time_s=0.3), period=45_000,
        session_dir=tmp_path_factory.mktemp("o"), **kw,
    )
    viprof = viprof_profile(
        make_tiny_workload(base_time_s=0.3), period=45_000,
        session_dir=tmp_path_factory.mktemp("v"), **kw,
    )
    return base, oprof, viprof


class TestDecomposition:
    def test_components_sum_to_slowdown(self, runs):
        base, oprof, _ = runs
        b = decompose_overhead(base, oprof)
        reconstructed = (
            b.nmi_pct + b.daemon_pct + b.agent_pct + b.residual_pct
        )
        assert reconstructed == pytest.approx(
            100 * (b.slowdown - 1), rel=1e-6
        )

    def test_oprofile_has_no_agent_cost(self, runs):
        base, oprof, _ = runs
        b = decompose_overhead(base, oprof)
        assert b.agent_cycles == 0
        assert b.nmi_cycles > 0
        assert b.daemon_cycles > 0

    def test_viprof_agent_cost_positive(self, runs):
        base, _, viprof = runs
        b = decompose_overhead(base, viprof)
        assert b.agent_cycles > 0

    def test_viprof_daemon_cheaper_than_oprofile(self, runs):
        """The paper's anon-path replacement, visible in the decomposition:
        VIProf's daemon does strictly less work per JIT sample."""
        base, oprof, viprof = runs
        bo = decompose_overhead(base, oprof)
        bv = decompose_overhead(base, viprof)
        assert bv.daemon_cycles < bo.daemon_cycles

    def test_format_row(self, runs):
        base, oprof, _ = runs
        txt = decompose_overhead(base, oprof).format_row()
        assert "nmi" in txt and "daemon" in txt
