"""Tests for the analysis.accuracy scoring helpers."""

import pytest

from repro import oprofile_profile, viprof_profile
from repro.analysis import (
    sampleable_share,
    score_oprofile_blindness,
    score_viprof_accuracy,
)
from tests.conftest import make_tiny_workload


@pytest.fixture(scope="module")
def vrun(tmp_path_factory):
    return viprof_profile(
        make_tiny_workload(base_time_s=0.8), period=10_000,
        session_dir=tmp_path_factory.mktemp("v"), noise=False,
    )


@pytest.fixture(scope="module")
def orun(tmp_path_factory):
    return oprofile_profile(
        make_tiny_workload(base_time_s=0.8), period=10_000,
        session_dir=tmp_path_factory.mktemp("o"), noise=False,
    )


class TestSampleableShare:
    def test_excludes_handler_cycles(self, vrun):
        raw_total = vrun.ledger.total_cycles
        share = sampleable_share(vrun, raw_total // 2)
        assert share > 0.5  # denominator shrank by the handler cycles

    def test_shares_sum_to_one(self, vrun):
        total = sum(
            sampleable_share(vrun, e.cycles)
            for e in vrun.ledger.by_symbol.values()
        )
        handler = sampleable_share(vrun, vrun.cpu_stats.nmi_handler_cycles)
        assert total == pytest.approx(1.0 + handler, rel=1e-6)


class TestScoreViprof:
    def test_score_fields(self, vrun):
        score = score_viprof_accuracy(vrun)
        assert score.jit_samples > 50
        assert score.resolution_rate > 0.95
        assert score.hot_methods_checked >= 1
        assert 0.0 <= score.mean_share_error <= score.max_share_error
        assert score.mean_share_error < 0.03

    def test_threshold_controls_population(self, vrun):
        strict = score_viprof_accuracy(vrun, hot_threshold=0.2)
        loose = score_viprof_accuracy(vrun, hot_threshold=0.001)
        assert loose.hot_methods_checked >= strict.hot_methods_checked


class TestScoreBlindness:
    def test_blind_share_close_to_truth(self, orun):
        blind, true = score_oprofile_blindness(orun)
        assert blind == pytest.approx(true, abs=0.06)
        assert blind > 0.3  # JVM workloads live mostly in the blind zone
