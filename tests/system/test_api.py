"""Tests for the three-function public API."""

from repro import base_run, oprofile_profile, viprof_profile
from repro.system.engine import ProfilerMode
from tests.conftest import make_tiny_workload


class TestApi:
    def test_base_run(self):
        r = base_run(make_tiny_workload(), time_scale=0.5)
        assert r.mode is ProfilerMode.NONE
        assert r.wall_cycles > 0

    def test_oprofile_profile(self, tmp_path):
        r = oprofile_profile(
            make_tiny_workload(), period=90_000, session_dir=tmp_path
        )
        assert r.mode is ProfilerMode.OPROFILE
        assert r.oprofile_report().totals["GLOBAL_POWER_EVENTS"] > 0

    def test_viprof_profile(self, tmp_path):
        r = viprof_profile(
            make_tiny_workload(), period=90_000, session_dir=tmp_path
        )
        assert r.mode is ProfilerMode.VIPROF
        assert r.viprof_report().jit_stats.jit_samples > 0

    def test_temp_session_dir_created(self):
        r = viprof_profile(make_tiny_workload(base_time_s=0.05))
        assert r.session_dir is not None
        assert r.session_dir.exists()

    def test_custom_period_propagates(self, tmp_path):
        r = viprof_profile(
            make_tiny_workload(), period=450_000, session_dir=tmp_path
        )
        assert r.config.profile_config.primary_period == 450_000
