"""Tests for windowed profiling (opcontrol --start/--stop semantics)."""

import pytest

from repro.errors import ConfigError
from repro.oprofile.opcontrol import OprofileConfig
from repro.profiling.samplefile import SampleFileReader
from repro.system.engine import EngineConfig, ProfilerMode, SystemEngine
from tests.conftest import make_tiny_workload


def run_windowed(tmp_path, window, mode=ProfilerMode.VIPROF):
    cfg = EngineConfig(
        mode=mode,
        profile_config=OprofileConfig.paper_config(20_000),
        session_dir=tmp_path,
        seed=4,
        noise=False,
        profile_window=window,
    )
    return SystemEngine(make_tiny_workload(base_time_s=0.4), cfg).run()


class TestWindowValidation:
    @pytest.mark.parametrize("window", [(-0.1, 1.0), (0.5, 0.5), (0.2, 1.2)])
    def test_bad_windows_rejected(self, window):
        with pytest.raises(ConfigError, match="profile_window"):
            EngineConfig(profile_window=window)


class TestWindowedRun:
    def test_full_window_is_default_behaviour(self, tmp_path):
        full = run_windowed(tmp_path / "full", (0.0, 1.0))
        assert full.daemon_stats.samples_logged > 0

    def test_samples_restricted_to_window(self, tmp_path):
        """A (0.4, 0.7) window's samples must span roughly the middle of
        the run and be proportionally fewer than a full profile's."""
        full = run_windowed(tmp_path / "full", (0.0, 1.0))
        mid = run_windowed(tmp_path / "mid", (0.4, 0.7))
        n_full = full.daemon_stats.samples_logged
        n_mid = mid.daemon_stats.samples_logged
        assert 0 < n_mid < n_full
        assert n_mid == pytest.approx(n_full * 0.3, rel=0.5)
        cycles = [
            s.cycle
            for p in (tmp_path / "mid" / "samples").glob("*.samples")
            for s in SampleFileReader(p)
        ]
        assert min(cycles) > 0.25 * mid.wall_cycles
        assert max(cycles) < 0.85 * mid.wall_cycles

    def test_windowed_overhead_lower(self, tmp_path):
        from repro.system.api import base_run

        base = base_run(
            make_tiny_workload(base_time_s=0.4), seed=4, noise=False
        )
        full = run_windowed(tmp_path / "f", (0.0, 1.0))
        narrow = run_windowed(tmp_path / "n", (0.45, 0.55))
        assert narrow.slowdown_vs(base) < full.slowdown_vs(base)

    def test_late_attach_report_still_resolves(self, tmp_path):
        """Attaching after warm-up: samples mostly hit code compiled before
        profiling began — only backward traversal plus the final map flush
        make them resolvable."""
        late = run_windowed(tmp_path / "late", (0.5, 1.0))
        vr = late.viprof_report()
        assert vr.jit_stats.jit_samples > 0
        assert vr.jit_stats.resolution_rate > 0.9

    def test_oprofile_windowed(self, tmp_path):
        mid = run_windowed(
            tmp_path / "om", (0.3, 0.6), mode=ProfilerMode.OPROFILE
        )
        assert mid.daemon_stats.samples_logged > 0
        report = mid.oprofile_report()
        assert report.totals["GLOBAL_POWER_EVENTS"] > 0
