"""Engine-level golden parity: batched sessions hash like the fixtures.

``tests/fixtures/golden/session_hashes.json`` holds per-file sha256
digests of two seeded deterministic sessions captured from the
**per-sample** write path (see ``tests/fixtures/golden/
regen_session_hashes.py``).  Replaying the same runs through the current
(batched) collection path must reproduce every session file byte for
byte — sample files, jit maps, everything the session directory holds.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.system.api import viprof_profile
from repro.workloads import by_name
from repro.xen import GuestSpec, MultiStackEngine

GOLDEN = (
    Path(__file__).resolve().parents[1]
    / "fixtures" / "golden" / "session_hashes.json"
)


def hash_tree(root: Path) -> dict[str, str]:
    return {
        p.relative_to(root).as_posix(): hashlib.sha256(
            p.read_bytes()
        ).hexdigest()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN.read_text())


def test_viprof_session_matches_golden(golden):
    params = golden["viprof_fop"]["params"]
    run = viprof_profile(
        by_name("fop"),
        period=params["period"],
        time_scale=params["time_scale"],
        seed=params["seed"],
    )
    assert run.session_dir is not None
    assert hash_tree(run.session_dir) == golden["viprof_fop"]["files"]


def test_xen_session_matches_golden(golden):
    params = golden["xen_fop_ps"]["params"]
    engine = MultiStackEngine(
        [GuestSpec(by_name("fop")), GuestSpec(by_name("ps"), weight=512)],
        period=params["period"],
        time_scale=params["time_scale"],
        seed=params["seed"],
    )
    result = engine.run()
    result.save_samples()
    assert hash_tree(result.session_dir) == golden["xen_fop_ps"]["files"]
