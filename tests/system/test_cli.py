"""Tests for the viprof CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pseudojbb" in out and "antlr" in out

    def test_report(self, capsys):
        assert main(["report", "fop", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "JIT.App" in out
        assert "% resolved" in out

    def test_case_study(self, capsys):
        assert main(["case-study", "--scale", "0.08", "--rows", "6"]) == 0
        out = capsys.readouterr().out
        assert "=== VIProf ===" in out and "=== Oprofile ===" in out

    def test_overhead_subset(self, capsys):
        assert main(
            ["overhead", "--benchmarks", "fop", "--scale", "0.08"]
        ) == 0
        out = capsys.readouterr().out
        assert "VIProf 45K" in out and "Base time" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "fop", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "oprofile" in out and "viprof" in out and "agent" in out

    def test_unknown_benchmark_errors(self):
        with pytest.raises(Exception):
            main(["report", "doom", "--scale", "0.1"])

    def test_annotate(self, capsys):
        assert main(["annotate", "fop", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "~bc" in out and "hottest bucket" in out

    def test_diff(self, capsys):
        assert main(
            ["diff", "fop", "--scale", "0.1", "--period", "20000", "45000"]
        ) == 0
        out = capsys.readouterr().out
        assert "delta" in out

    def test_pgo(self, capsys):
        assert main(["pgo", "fop", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "hot methods" in out

    def test_xen(self, capsys):
        assert main(["xen", "fop", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "world switches" in out and "dom0:" in out

    def test_timeline(self, capsys):
        assert main(
            ["timeline", "fop", "--scale", "0.2", "--period", "20000",
             "--window", "500000"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase transitions" in out and "window" in out


class TestRecoverCli:
    @pytest.fixture
    def damaged_session(self, tmp_path):
        """A fixture session with a mid-record tear in its sample file."""
        from repro.statcheck.fixtures import write_fixture_session

        sess = write_fixture_session(tmp_path / "sess")
        victim = sess / "samples" / "GLOBAL_POWER_EVENTS.samples"
        victim.write_bytes(victim.read_bytes()[:-10])
        return sess

    def test_recover_salvages(self, damaged_session, capsys):
        assert main(["recover", str(damaged_session)]) == 0
        out = capsys.readouterr().out
        assert "salvaged" in out and "truncated" in out
        assert (damaged_session / "salvage.json").is_file()

    def test_recover_dry_run_is_read_only(self, damaged_session, capsys):
        before = {
            p: p.read_bytes()
            for p in damaged_session.rglob("*") if p.is_file()
        }
        assert main(["recover", "--dry-run", str(damaged_session)]) == 0
        out = capsys.readouterr().out
        assert "would salvage" in out
        assert not (damaged_session / "salvage.json").exists()
        after = {
            p: p.read_bytes()
            for p in damaged_session.rglob("*") if p.is_file()
        }
        assert before == after

    def test_recover_json_output(self, damaged_session, capsys):
        import json as json_mod

        assert main(["recover", "--json", str(damaged_session)]) == 0
        manifest = json_mod.loads(capsys.readouterr().out)
        assert manifest["version"] == 1
        assert manifest["sample_files"][0]["action"] == "truncated"

    def test_recover_refuses_second_run(self, damaged_session, capsys):
        assert main(["recover", str(damaged_session)]) == 0
        capsys.readouterr()
        assert main(["recover", str(damaged_session)]) == 2
        assert "viprof recover:" in capsys.readouterr().err

    def test_recover_intact_session(self, tmp_path, capsys):
        from repro.statcheck.fixtures import write_fixture_session

        sess = write_fixture_session(tmp_path / "sess")
        assert main(["recover", str(sess)]) == 0
        assert "session was intact" in capsys.readouterr().out

    def test_recover_not_a_session(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "nothing")]) == 2
        assert "viprof recover:" in capsys.readouterr().err
