"""Tests for the viprof CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pseudojbb" in out and "antlr" in out

    def test_report(self, capsys):
        assert main(["report", "fop", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "JIT.App" in out
        assert "% resolved" in out

    def test_case_study(self, capsys):
        assert main(["case-study", "--scale", "0.08", "--rows", "6"]) == 0
        out = capsys.readouterr().out
        assert "=== VIProf ===" in out and "=== Oprofile ===" in out

    def test_overhead_subset(self, capsys):
        assert main(
            ["overhead", "--benchmarks", "fop", "--scale", "0.08"]
        ) == 0
        out = capsys.readouterr().out
        assert "VIProf 45K" in out and "Base time" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "fop", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "oprofile" in out and "viprof" in out and "agent" in out

    def test_unknown_benchmark_errors(self):
        with pytest.raises(Exception):
            main(["report", "doom", "--scale", "0.1"])

    def test_annotate(self, capsys):
        assert main(["annotate", "fop", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "~bc" in out and "hottest bucket" in out

    def test_diff(self, capsys):
        assert main(
            ["diff", "fop", "--scale", "0.1", "--period", "20000", "45000"]
        ) == 0
        out = capsys.readouterr().out
        assert "delta" in out

    def test_pgo(self, capsys):
        assert main(["pgo", "fop", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "hot methods" in out

    def test_xen(self, capsys):
        assert main(["xen", "fop", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "world switches" in out and "dom0:" in out

    def test_timeline(self, capsys):
        assert main(
            ["timeline", "fop", "--scale", "0.2", "--period", "20000",
             "--window", "500000"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase transitions" in out and "window" in out
