"""Unit tests for the experiment matrix structures (formatting/selectors;
the full runs are exercised by tests/integration and benchmarks)."""

import pytest

from repro.errors import ConfigError
from repro.system.experiment import OverheadCell, OverheadMatrix


def cell(benchmark, profiler, period, slowdown):
    return OverheadCell(
        benchmark=benchmark, profiler=profiler, period=period,
        slowdown=slowdown, base_seconds=10.0,
        profiled_seconds=10.0 * slowdown,
    )


@pytest.fixture
def matrix():
    m = OverheadMatrix()
    for name, o90, v45, v90, v450 in (
        ("antlr", 1.035, 1.12, 1.10, 1.08),
        ("ps", 1.04, 1.075, 1.055, 1.035),
    ):
        m.base_seconds[name] = 10.0
        m.cells.append(cell(name, "oprofile", 90_000, o90))
        m.cells.append(cell(name, "viprof", 45_000, v45))
        m.cells.append(cell(name, "viprof", 90_000, v90))
        m.cells.append(cell(name, "viprof", 450_000, v450))
    return m


class TestOverheadMatrix:
    def test_cell_lookup(self, matrix):
        assert matrix.cell("antlr", "viprof", 90_000).slowdown == 1.10
        with pytest.raises(ConfigError):
            matrix.cell("antlr", "viprof", 1)

    def test_slowdowns_selector(self, matrix):
        v90 = matrix.slowdowns("viprof", 90_000)
        assert v90 == {"antlr": 1.10, "ps": 1.055}

    def test_average(self, matrix):
        assert matrix.average_slowdown("viprof", 90_000) == pytest.approx(
            (1.10 + 1.055) / 2
        )
        assert matrix.average_slowdown("nope", 90_000) == 0.0

    def test_figure2_format(self, matrix):
        txt = matrix.format_figure2()
        lines = txt.splitlines()
        assert "Oprof 90K" in lines[0] and "VIProf 450K" in lines[0]
        # Paper x-axis order: antlr before ps.
        assert lines[1].startswith("antlr")
        assert lines[2].startswith("ps")
        assert lines[-1].startswith("Average")

    def test_figure2_missing_cells_dashed(self):
        m = OverheadMatrix()
        m.base_seconds["ps"] = 10.0
        m.cells.append(cell("ps", "viprof", 90_000, 1.05))
        txt = m.format_figure2()
        assert "-" in txt.splitlines()[1]

    def test_figure3_format(self, matrix):
        txt = matrix.format_figure3()
        assert "Base time (s)" in txt
        assert "10.00" in txt
        assert txt.splitlines()[-1].startswith("Average")

    def test_paper_order_for_unknown_names(self, matrix):
        matrix.base_seconds["custom"] = 1.0
        txt = matrix.format_figure3()
        # Unknown benchmarks sort after the paper's nine.
        assert txt.splitlines()[-2].startswith("custom")
