"""Unit tests for the ground-truth ledger."""

from repro.profiling.model import Layer, TruthLabel
from repro.system.ledger import TruthLedger


def label(layer=Layer.APP_JIT, image="JIT.App", symbol="a.B.m"):
    return TruthLabel(layer=layer, image=image, symbol=symbol)


class TestTruthLedger:
    def test_record_accumulates(self):
        l = TruthLedger()
        l.record(label(), 100, 5)
        l.record(label(), 50, 1)
        e = l.by_symbol[("JIT.App", "a.B.m")]
        assert e.cycles == 150 and e.l2_misses == 6
        assert l.total_cycles == 150 and l.total_misses == 6

    def test_layer_rollup(self):
        l = TruthLedger()
        l.record(label(Layer.APP_JIT), 100)
        l.record(label(Layer.VM, "RVM.map", "x"), 60)
        l.record(label(Layer.APP_JIT, symbol="other"), 40)
        assert l.layer_cycles(Layer.APP_JIT) == 140
        assert abs(l.layer_share(Layer.APP_JIT) - 0.7) < 1e-9
        assert l.layer_share(Layer.KERNEL) == 0.0

    def test_cycle_and_miss_share(self):
        l = TruthLedger()
        l.record(label(symbol="a"), 75, 3)
        l.record(label(symbol="b"), 25, 1)
        assert abs(l.cycle_share(("JIT.App", "a")) - 0.75) < 1e-9
        assert abs(l.miss_share(("JIT.App", "a")) - 0.75) < 1e-9
        assert l.cycle_share(("nope", "x")) == 0.0

    def test_empty_ledger_shares(self):
        l = TruthLedger()
        assert l.cycle_share(("a", "b")) == 0.0
        assert l.layer_share(Layer.VM) == 0.0
        assert l.miss_share(("a", "b")) == 0.0

    def test_idle_tracked_separately(self):
        l = TruthLedger()
        l.record(label(), 100)
        l.record_idle(50)
        assert l.idle_cycles == 50
        assert l.total_cycles == 100

    def test_top_symbols_sorted(self):
        l = TruthLedger()
        l.record(label(symbol="cold"), 10)
        l.record(label(symbol="hot"), 1000)
        l.record(label(symbol="warm"), 100)
        top = l.top_symbols(2)
        assert top[0][0] == ("JIT.App", "hot")
        assert top[1][0] == ("JIT.App", "warm")

    def test_format_table(self):
        l = TruthLedger()
        l.record(label(), 100, 10)
        txt = l.format_table()
        assert "JIT.App : a.B.m" in txt
