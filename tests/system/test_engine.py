"""Tests for the full-system engine: assembly, accounting, profiler wiring."""

import pytest

from repro.errors import ConfigError
from repro.oprofile.opcontrol import OprofileConfig
from repro.profiling.model import Layer
from repro.system.engine import EngineConfig, ProfilerMode, SystemEngine
from tests.conftest import make_tiny_workload


def run(mode=ProfilerMode.NONE, tmp_path=None, **kw):
    wl_kw = kw.pop("workload_kwargs", {})
    wl = make_tiny_workload(base_time_s=0.15, **wl_kw)
    cfg_kw = dict(mode=mode, seed=3)
    if mode is not ProfilerMode.NONE:
        cfg_kw["profile_config"] = OprofileConfig.paper_config(90_000)
        cfg_kw["session_dir"] = tmp_path
    cfg_kw.update(kw)
    return SystemEngine(wl, EngineConfig(**cfg_kw)).run()


class TestConfigValidation:
    def test_profiled_mode_needs_config(self):
        with pytest.raises(ConfigError):
            EngineConfig(mode=ProfilerMode.OPROFILE)

    def test_bad_time_scale(self):
        with pytest.raises(ConfigError):
            EngineConfig(time_scale=0)


class TestBaseRun:
    def test_budget_reached(self):
        r = run()
        assert r.workload_cycles >= r.budget_cycles
        assert r.wall_cycles >= r.workload_cycles

    def test_ledger_covers_all_layers(self):
        r = run()
        for layer in (Layer.APP_JIT, Layer.VM, Layer.NATIVE, Layer.KERNEL,
                      Layer.OTHER):
            assert r.ledger.layer_cycles(layer) > 0, layer

    def test_no_profiler_artifacts(self):
        r = run()
        assert r.sample_dir is None
        assert r.daemon_stats is None
        assert r.agent_stats is None
        assert r.ledger.layer_cycles(Layer.DAEMON) == 0
        assert r.ledger.layer_cycles(Layer.AGENT) == 0

    def test_seconds_conversion(self):
        r = run()
        assert r.seconds == pytest.approx(r.wall_cycles / 3_400_000)

    def test_no_background_option(self):
        r = run(background=False)
        assert r.ledger.layer_cycles(Layer.OTHER) == 0

    def test_deterministic_wall_cycles(self):
        assert run().wall_cycles == run().wall_cycles


class TestOprofileRun:
    def test_samples_written(self, tmp_path):
        r = run(ProfilerMode.OPROFILE, tmp_path)
        assert r.sample_dir is not None
        assert r.daemon_stats.samples_logged > 0
        assert r.daemon_stats.jit_samples == 0  # stock daemon: no JIT path

    def test_overhead_positive(self, tmp_path):
        base = run(noise=False, background=False)
        prof = run(ProfilerMode.OPROFILE, tmp_path, noise=False,
                   background=False)
        assert prof.slowdown_vs(base) > 1.0

    def test_report_shows_anonymous_jit(self, tmp_path):
        r = run(ProfilerMode.OPROFILE, tmp_path)
        report = r.oprofile_report()
        anon = [row for row in report.rows if row.image.startswith("anon")]
        assert anon, "JIT samples should appear as anonymous ranges"

    def test_viprof_report_unavailable(self, tmp_path):
        r = run(ProfilerMode.OPROFILE, tmp_path)
        with pytest.raises(ConfigError):
            r.viprof_report()

    def test_daemon_cycles_in_ledger(self, tmp_path):
        r = run(ProfilerMode.OPROFILE, tmp_path)
        assert r.ledger.layer_cycles(Layer.DAEMON) > 0
        nmi = r.ledger.by_symbol.get(("vmlinux", "oprofile_nmi_handler"))
        assert nmi is not None and nmi.cycles > 0


class TestViprofRun:
    def test_agent_and_maps(self, tmp_path):
        r = run(ProfilerMode.VIPROF, tmp_path)
        assert r.agent_stats.compiles_logged > 0
        assert r.agent_stats.maps_written > 0
        maps = list((tmp_path / "jit-maps").iterdir())
        assert maps

    def test_jit_samples_classified(self, tmp_path):
        r = run(ProfilerMode.VIPROF, tmp_path)
        assert r.daemon_stats.jit_samples > 0

    def test_report_resolves_jit_methods(self, tmp_path):
        r = run(ProfilerMode.VIPROF, tmp_path)
        vr = r.viprof_report()
        assert vr.jit_stats.jit_samples > 0
        assert vr.jit_stats.resolution_rate > 0.9
        jit_rows = [
            row for row in vr.report.rows if row.image == "JIT.App"
        ]
        assert any(row.symbol.startswith("test.app") for row in jit_rows)

    def test_agent_cycles_in_ledger(self, tmp_path):
        r = run(ProfilerMode.VIPROF, tmp_path)
        assert r.ledger.layer_cycles(Layer.AGENT) > 0

    def test_epochs_stamped(self, tmp_path):
        from repro.profiling.samplefile import SampleFileReader

        r = run(ProfilerMode.VIPROF, tmp_path)
        f = next((tmp_path / "samples").glob("*.samples"))
        epochs = {s.epoch for s in SampleFileReader(f)}
        assert -1 not in epochs
        assert epochs

    def test_callgraph_recorded_when_enabled(self, tmp_path):
        r = run(ProfilerMode.VIPROF, tmp_path, record_callgraph=True)
        assert r.callgraph is not None
        ev = "GLOBAL_POWER_EVENTS"
        assert r.callgraph.recorder.self_samples
        assert r.callgraph.cross_layer_arcs(ev)
