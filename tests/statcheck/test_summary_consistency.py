"""VP110: embedded summaries must agree with the artifacts on disk."""

import json
import shutil
from pathlib import Path

from repro.metrics.build import write_session_summary
from repro.statcheck.artifacts import load_session
from repro.statcheck.fixtures import write_fixture_session
from repro.statcheck.rules import run_rules

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"


def vp110(session_dir):
    report = run_rules(load_session(session_dir), rule_ids=["VP110"])
    return [f for f in report if f.rule_id == "VP110"]


def copy_fixture(name: str, tmp_path: Path) -> Path:
    dest = tmp_path / name
    shutil.copytree(FIXTURES / name, dest)
    return dest


class TestSessionSummary:
    def test_checked_in_fixtures_are_consistent(self):
        for name in (
            "lint-session", "lint-session-batched", "lint-session-damaged"
        ):
            assert vp110(FIXTURES / name) == [], name

    def test_session_without_summary_is_silent(self, tmp_path):
        sess = write_fixture_session(tmp_path / "bare")
        assert vp110(sess) == []

    def test_freshly_derived_summary_is_consistent(self, tmp_path):
        sess = write_fixture_session(tmp_path / "fresh")
        write_session_summary(sess)
        assert vp110(sess) == []

    def test_tampered_totals_flagged(self, tmp_path):
        sess = copy_fixture("lint-session", tmp_path)
        path = sess / "summary.json"
        doc = json.loads(path.read_text())
        doc["totals"]["GLOBAL_POWER_EVENTS"] += 3
        path.write_text(json.dumps(doc))
        findings = vp110(sess)
        assert len(findings) == 1
        assert "GLOBAL_POWER_EVENTS" in findings[0].message

    def test_tampered_layer_counts_flagged(self, tmp_path):
        sess = copy_fixture("lint-session", tmp_path)
        path = sess / "summary.json"
        doc = json.loads(path.read_text())
        doc["panels"]["layers"]["kernel"] += 1
        doc["panels"]["layers"]["user"] -= 1
        path.write_text(json.dumps(doc))
        locations = {f.location for f in vp110(sess)}
        assert locations == {"panels.layers.kernel", "panels.layers.user"}

    def test_jit_split_must_sum_to_jit_layer(self, tmp_path):
        sess = copy_fixture("lint-session", tmp_path)
        path = sess / "summary.json"
        doc = json.loads(path.read_text())
        doc["panels"]["jit"]["resolved"] += 2
        path.write_text(json.dumps(doc))
        assert any(f.location == "panels.jit" for f in vp110(sess))

    def test_salvage_panel_without_manifest_flagged(self, tmp_path):
        sess = copy_fixture("lint-session", tmp_path)
        path = sess / "summary.json"
        doc = json.loads(path.read_text())
        doc["panels"]["salvage"] = {"records_kept": 5}
        path.write_text(json.dumps(doc))
        findings = vp110(sess)
        assert any("no salvage manifest" in f.message for f in findings)

    def test_unparseable_summary_flagged(self, tmp_path):
        sess = copy_fixture("lint-session", tmp_path)
        (sess / "summary.json").write_text("{broken")
        findings = vp110(sess)
        assert len(findings) == 1
        assert "does not parse" in findings[0].message

    def test_removing_samples_breaks_agreement(self, tmp_path):
        sess = copy_fixture("lint-session", tmp_path)
        for p in (sess / "samples").glob("*.samples"):
            p.unlink()
        assert any("totals" in f.location for f in vp110(sess))


class TestSalvageEmbeddedSummary:
    def test_tampered_embedded_panel_flagged(self, tmp_path):
        sess = copy_fixture("lint-session-damaged", tmp_path)
        path = sess / "salvage.json"
        doc = json.loads(path.read_text())
        doc["summary"]["salvage"]["bytes_dropped"] += 7
        path.write_text(json.dumps(doc))
        findings = vp110(sess)
        assert any(
            f.location == "summary.salvage.bytes_dropped" for f in findings
        )

    def test_manifest_without_embedded_summary_is_silent(self, tmp_path):
        sess = copy_fixture("lint-session-damaged", tmp_path)
        path = sess / "salvage.json"
        doc = json.loads(path.read_text())
        del doc["summary"]
        path.write_text(json.dumps(doc))
        # The session summary's own salvage panel still cross-checks
        # against the manifest entries; dropping the embedded copy alone
        # must not flag (older manifests predate the embedding).
        assert vp110(sess) == []

    def test_malformed_embedded_summary_flagged(self, tmp_path):
        sess = copy_fixture("lint-session-damaged", tmp_path)
        path = sess / "salvage.json"
        doc = json.loads(path.read_text())
        doc["summary"] = "yes"
        path.write_text(json.dumps(doc))
        assert any(
            "malformed embedded summary" in f.message for f in vp110(sess)
        )
