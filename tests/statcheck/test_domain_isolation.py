"""The cross-domain fleet rule (VP112) and the fleet fixture family.

A fleet session root holds one complete sub-session per guest domain;
the rule guards the seams between them: tag ownership, exact partition
of the root stream, and quarantines justified by each domain's own
artifacts.  Ground truth comes from the fixture generator — a clean
two-domain fleet, a damaged-but-salvaged one, and one corruption per
leak shape.
"""

import json
from pathlib import Path

import pytest

from repro.errors import StatCheckError
from repro.profiling.model import RawSample
from repro.profiling.record_codec import DOMAIN_CODEC, RecordFileWriter
from repro.statcheck.analyzer import lint_session
from repro.statcheck.artifacts import load_session
from repro.statcheck.findings import Severity
from repro.statcheck.fixtures import (
    FLEET_CORRUPTIONS,
    write_fixture_session,
    write_fleet_damaged_fixture_session,
    write_fleet_fixture_session,
)

_EVENT = "GLOBAL_POWER_EVENTS"


class TestFleetFixtures:
    def test_clean_fleet_lints_clean_everywhere(self, tmp_path):
        root = write_fleet_fixture_session(tmp_path / "fleet")
        for d in (root, root / "dom1", root / "dom2"):
            report = lint_session(d)
            assert len(report) == 0, f"{d.name}:\n{report.format_text()}"

    def test_unknown_fleet_corruption_rejected(self, tmp_path):
        with pytest.raises(StatCheckError, match="unknown fleet"):
            write_fleet_fixture_session(tmp_path / "x", "made-up")

    @pytest.mark.parametrize("corruption", FLEET_CORRUPTIONS)
    def test_fleet_corruption_trips_vp112_only(self, tmp_path, corruption):
        root = write_fleet_fixture_session(tmp_path / corruption, corruption)
        report = lint_session(root)
        assert report.rule_ids == ("VP112",), report.format_text()
        assert report.exit_code(fail_on=Severity.WARNING) == 1

    def test_tag_leak_message_names_both_domains(self, tmp_path):
        root = write_fleet_fixture_session(tmp_path / "leak", "tag-leak")
        report = lint_session(root)
        messages = [f.message for f in report.by_rule("VP112")]
        assert any(
            "dom2" in m and "dom1" in m and "bled into" in m
            for m in messages
        ), messages

    def test_extra_domain_record_breaks_the_partition(self, tmp_path):
        # A record present in dom2's sub-session but absent from the
        # root stream (or vice versa) is a partition violation — the
        # sub-sessions must hold exactly what dom0's daemon drained.
        root = write_fleet_fixture_session(tmp_path / "fleet")
        path = root / "dom2" / "samples" / f"xenoprof.{_EVENT}.samples"
        extra = RawSample(
            pc=0xC000_9000, event_name=_EVENT, task_id=42,
            kernel_mode=True, cycle=9_000, epoch=2,
        )
        with RecordFileWriter(
            tmp_path / "tail.samples", DOMAIN_CODEC, _EVENT, 90_000,
        ) as w:
            w.write(extra, domain_id=2)
            w.flush()
            record = (tmp_path / "tail.samples").read_bytes()[
                w._data_start:
            ]
        path.write_bytes(path.read_bytes() + record)
        report = lint_session(root, rule_ids=["VP112"])
        assert any(
            "do not partition the root stream" in f.message
            and "dom2" in f.message
            for f in report.by_rule("VP112")
        ), report.format_text()

    def test_quarantine_leak_blames_the_healthy_map(self, tmp_path):
        root = write_fleet_fixture_session(
            tmp_path / "leak", "quarantine-leak"
        )
        report = lint_session(root)
        findings = report.by_rule("VP112")
        assert any(
            "dom2" in f.message and "healthy map" in f.message
            for f in findings
        ), report.format_text()
        # dom1's own salvage stays above suspicion.
        assert not any("dom1 quarantines" in f.message for f in findings)

    def test_damaged_fleet_is_fully_accounted(self, tmp_path):
        root = write_fleet_damaged_fixture_session(tmp_path / "fleet")
        for d in (root, root / "dom1", root / "dom2"):
            report = lint_session(d)
            assert report.exit_code(fail_on=Severity.WARNING) == 0, (
                f"{d.name}:\n{report.format_text()}"
            )
        assert (root / "dom1" / "salvage.json").is_file()
        assert (root / "dom1" / "jit-maps" / "quarantine").is_dir()

    def test_checked_in_fleet_fixture_is_accounted(self):
        sess = (
            Path(__file__).resolve().parents[1]
            / "fixtures" / "lint-session-fleet-damaged"
        )
        for d in (sess, sess / "dom1", sess / "dom2"):
            report = lint_session(d)
            assert report.exit_code(fail_on=Severity.WARNING) == 0, (
                f"{d.name}:\n{report.format_text()}"
            )
        manifest = json.loads((sess / "dom1" / "salvage.json").read_text())
        assert manifest["quarantined_epochs"] == [1]


class TestFleetLoading:
    def test_root_load_discovers_domain_subsessions(self, tmp_path):
        root = write_fleet_fixture_session(tmp_path / "fleet")
        arts = load_session(root)
        assert sorted(arts.domains) == [1, 2]
        for did, sub in arts.domains.items():
            assert sub.session_dir == root / f"dom{did}"
            assert sub.maps and sub.sample_files
        # Root and domain files are domain-tagged; the single-stack
        # (VPRS) fixture stays untagged.
        for sf in arts.sample_files:
            assert sf.domain_ids is not None
            assert len(sf.domain_ids) == len(sf.samples)
        plain = load_session(write_fixture_session(tmp_path / "plain"))
        assert plain.domains == {}
        assert all(sf.domain_ids is None for sf in plain.sample_files)

    def test_rotten_domain_artifact_surfaces_at_root(self, tmp_path):
        root = write_fleet_fixture_session(tmp_path / "fleet")
        bad = root / "dom2" / "jit-maps" / "jit-map.00002"
        bad.write_text("garbage\n", encoding="utf-8")
        report = lint_session(root)
        assert any(
            f.rule_id == "VP100" and "dom2" in f.artifact for f in report
        ), report.format_text()


class TestQuarantineJustification:
    def _edit_manifest(self, dom_dir: Path, mutate) -> None:
        path = dom_dir / "salvage.json"
        manifest = json.loads(path.read_text(encoding="utf-8"))
        mutate(manifest)
        path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")

    def test_phantom_quarantine_has_no_evidence(self, tmp_path):
        root = write_fleet_damaged_fixture_session(tmp_path / "fleet")
        self._edit_manifest(
            root / "dom1",
            lambda m: m["quarantined_epochs"].append(9),
        )
        report = lint_session(root)
        assert any(
            f.rule_id == "VP112"
            and "none of its own artifacts mention any epoch >= 9"
            in f.message
            for f in report
        ), report.format_text()

    def test_sibling_evidence_is_called_out(self, tmp_path):
        # Hand-built minimal fleet: dom1 only ever saw epoch 0 but
        # quarantines epoch 1, which exists solely in dom2's stream —
        # the classic copied-manifest leak.
        root = tmp_path / "fleet"
        recs = {
            1: RawSample(pc=0xC000_1000, event_name=_EVENT, task_id=11,
                         kernel_mode=True, cycle=1_000, epoch=0),
            2: RawSample(pc=0xC000_2000, event_name=_EVENT, task_id=22,
                         kernel_mode=True, cycle=2_000, epoch=1),
        }
        for did, s in recs.items():
            sample_dir = root / f"dom{did}" / "samples"
            sample_dir.mkdir(parents=True)
            with RecordFileWriter(
                sample_dir / f"xenoprof.{_EVENT}.samples",
                DOMAIN_CODEC, _EVENT, 90_000,
            ) as w:
                w.write(s, domain_id=did)
        (root / "dom1" / "salvage.json").write_text(
            json.dumps({
                "version": 1,
                "quarantined_epochs": [1],
                "top_epoch": 1,
                "maps": [],
                "sample_files": [],
            })
        )
        (root / "samples").mkdir()
        with RecordFileWriter(
            root / "samples" / f"xenoprof.{_EVENT}.samples",
            DOMAIN_CODEC, _EVENT, 90_000,
        ) as w:
            for did in sorted(recs):
                w.write(recs[did], domain_id=did)
        report = lint_session(root, rule_ids=["VP112"])
        assert any(
            "evident in dom2's artifacts" in f.message
            and "leaked across domains" in f.message
            for f in report.by_rule("VP112")
        ), report.format_text()
