"""Seeded-violation tests for the dataflow selflint rules SL205–SL209.

Each rule gets at least one fixture that provably fires and a clean
counterpart built from the repo's own idioms (the `with` form, the
close-in-finally form, the escape-to-self form), so a precision
regression in either direction fails loudly.
"""

from pathlib import Path

import pytest

from repro.errors import StatCheckError
from repro.statcheck.findings import Severity
from repro.statcheck.selflint import lint_source, lint_tree

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def lint_text(tmp_path, text, rules, name="mod.py"):
    p = tmp_path / name
    p.write_text(text)
    return lint_source(p, root=tmp_path, rules=rules)


def rules_of(findings):
    return sorted({f.rule_id for f in findings})


class TestRuleSelection:
    def test_unknown_rule_id_is_typed_error(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        with pytest.raises(StatCheckError, match="unknown selflint rule"):
            lint_tree([tmp_path], rules=["SL999"])

    def test_selection_excludes_other_rules(self, tmp_path):
        # A file violating SL202 lints clean when only SL205 is selected.
        fs = lint_text(
            tmp_path,
            "def f():\n    raise ValueError('x')\n",
            rules=["SL205"],
        )
        assert fs == []


class TestSL205ResourceLeak:
    def test_unclosed_handle_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f(p):\n"
            "    fh = open(p, 'rb')\n"
            "    data = fh.read()\n"
            "    return data\n",
            rules=["SL205"],
        )
        assert rules_of(fs) == ["SL205"]
        assert "fh" in fs[0].message and "line 2" in fs[0].location

    def test_branch_leak_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f(p, c):\n"
            "    fh = open(p, 'rb')\n"
            "    if c:\n"
            "        fh.close()\n"
            "    return c\n",
            rules=["SL205"],
        )
        assert rules_of(fs) == ["SL205"]

    def test_record_reader_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "from repro.profiling.record_codec import RecordFileReader\n"
            "def f(p):\n"
            "    r = RecordFileReader(p)\n"
            "    n = r.path\n"
            "    return n\n",
            rules=["SL205"],
        )
        assert rules_of(fs) == ["SL205"]

    def test_leak_on_raise_path_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "from repro.errors import ProfilerError\n"
            "def f(p, c):\n"
            "    fh = open(p, 'rb')\n"
            "    if c:\n"
            "        raise ProfilerError('bad')\n"
            "    fh.close()\n"
            "    return c\n",
            rules=["SL205"],
        )
        assert rules_of(fs) == ["SL205"]

    def test_with_statement_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f(p):\n"
            "    with open(p, 'rb') as fh:\n"
            "        return fh.read()\n",
            rules=["SL205"],
        )
        assert fs == []

    def test_close_in_finally_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f(p, own):\n"
            "    fh = open(p, 'rb')\n"
            "    try:\n"
            "        return fh.read()\n"
            "    finally:\n"
            "        if own:\n"
            "            fh.close()\n",
            rules=["SL205"],
        )
        assert fs == []

    def test_close_on_both_branches_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f(p, c):\n"
            "    fh = open(p, 'rb')\n"
            "    if c:\n"
            "        fh.close()\n"
            "    else:\n"
            "        fh.close()\n"
            "    return c\n",
            rules=["SL205"],
        )
        assert fs == []

    def test_handler_closes_and_reraises_clean(self, tmp_path):
        # The RecordFileReader.__init__ idiom: parse under a try whose
        # handler closes and re-raises; the survivor escapes to self.
        fs = lint_text(
            tmp_path,
            "class R:\n"
            "    def start(self, p):\n"
            "        fh = open(p, 'rb')\n"
            "        try:\n"
            "            head = fh.read(4)\n"
            "        except OSError:\n"
            "            fh.close()\n"
            "            raise\n"
            "        self._fh = fh\n"
            "        return head\n",
            rules=["SL205"],
        )
        assert fs == []

    def test_escape_via_return_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f(p):\n"
            "    fh = open(p, 'rb')\n"
            "    return fh\n",
            rules=["SL205"],
        )
        assert fs == []

    def test_escape_via_call_argument_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "import contextlib\n"
            "def f(p, stack):\n"
            "    fh = open(p, 'rb')\n"
            "    stack.enter_context(contextlib.closing(fh))\n"
            "    return fh.read()\n",
            rules=["SL205"],
        )
        assert fs == []


class TestSL206ForkSharedState:
    WORKER_SRC = (
        "_CACHE = {}\n"
        "def resolve_worker(item):\n"
        "    return _CACHE.get(item)\n"
    )

    def test_dispatched_worker_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            self.WORKER_SRC
            + "def run(pool, items):\n"
            "    return list(pool.map(resolve_worker, items))\n",
            rules=["SL206"],
        )
        assert rules_of(fs) == ["SL206"]
        assert "_CACHE" in fs[0].message

    def test_worker_suffix_alone_fires(self, tmp_path):
        # The `*_worker` naming convention marks pool entry points even
        # before any dispatch call exists in the module.
        fs = lint_text(tmp_path, self.WORKER_SRC, rules=["SL206"])
        assert rules_of(fs) == ["SL206"]

    def test_transitive_callee_fires_with_path(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "_SEEN = set()\n"
            "def _helper(x):\n"
            "    return x in _SEEN\n"
            "def shard_worker(x):\n"
            "    return _helper(x)\n",
            rules=["SL206"],
        )
        assert rules_of(fs) == ["SL206"]
        assert "reached from worker 'shard_worker'" in fs[0].message

    def test_immutable_module_constant_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "EVENTS = ('cycles', 'instructions')\n"
            "def resolve_worker(item):\n"
            "    return item in EVENTS\n",
            rules=["SL206"],
        )
        assert fs == []

    def test_local_mutable_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "_CACHE = {}\n"
            "def resolve_worker(item):\n"
            "    _CACHE = {}\n"
            "    return _CACHE.get(item)\n"
            "def audit():\n"
            "    return len(_CACHE)\n",
            rules=["SL206"],
        )
        assert fs == []

    def test_non_worker_function_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "_CACHE = {}\n"
            "def lookup(item):\n"
            "    return _CACHE.get(item)\n",
            rules=["SL206"],
        )
        assert fs == []


class TestSL207CodecConsistency:
    def test_size_format_mismatch_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "FOO_RECORD_FORMAT = '<QI'\n"
            "FOO_RECORD_SIZE = 13\n",
            rules=["SL207"],
        )
        assert rules_of(fs) == ["SL207"]
        assert "calcsize" in fs[0].message and "12" in fs[0].message

    def test_size_without_format_fires(self, tmp_path):
        fs = lint_text(
            tmp_path, "BAR_RECORD_SIZE = 29\n", rules=["SL207"]
        )
        assert rules_of(fs) == ["SL207"]

    def test_format_without_size_fires(self, tmp_path):
        fs = lint_text(
            tmp_path, "BAR_RECORD_FORMAT = '<QIBQq'\n", rules=["SL207"]
        )
        assert rules_of(fs) == ["SL207"]

    def test_unparseable_format_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "import struct\n"
            "N = struct.calcsize('<Z')\n",
            rules=["SL207"],
        )
        assert rules_of(fs) == ["SL207"]
        assert "does not parse" in fs[0].message

    def test_folded_concatenation_checked(self, tmp_path):
        # The repo's own idiom: DOMAIN = CORE + column, sizes declared.
        fs = lint_text(
            tmp_path,
            "_CORE_RECORD_FORMAT = '<QIBQq'\n"
            "_DOMAIN_RECORD_FORMAT = _CORE_RECORD_FORMAT + 'H'\n"
            "CORE_RECORD_SIZE = 29\n"
            "DOMAIN_RECORD_SIZE = 30\n",  # wrong: <QIBQqH is 31
            rules=["SL207"],
        )
        assert rules_of(fs) == ["SL207"]
        assert "31" in fs[0].message

    def test_bad_magic_length_fires(self, tmp_path):
        fs = lint_text(
            tmp_path, "MAP_MAGIC = b'VPRSX'\n", rules=["SL207"]
        )
        assert rules_of(fs) == ["SL207"]
        assert "4" in fs[0].message

    def test_consistent_module_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "import struct\n"
            "_CORE_RECORD_FORMAT = '<QIBQq'\n"
            "_DOMAIN_RECORD_FORMAT = _CORE_RECORD_FORMAT + 'H'\n"
            "CORE_RECORD_SIZE = 29\n"
            "DOMAIN_RECORD_SIZE = 31\n"
            "FILE_MAGIC = b'VPRS'\n"
            "_S = struct.Struct(_DOMAIN_RECORD_FORMAT)\n",
            rules=["SL207"],
        )
        assert fs == []


class TestSL208CounterAccounting:
    def test_counter_missing_from_merge_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "class Stats:\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n"
            "        self.misses = 0\n"
            "    def merge(self, other):\n"
            "        self.hits += other.hits\n"
            "    def stats_dict(self):\n"
            "        return {'hits': self.hits, 'misses': self.misses}\n",
            rules=["SL208"],
        )
        assert rules_of(fs) == ["SL208"]
        assert "misses" in fs[0].message and "merge" in fs[0].message

    def test_counter_missing_from_export_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "class Stats:\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n"
            "        self.misses = 0\n"
            "    def merge(self, other):\n"
            "        self.hits += other.hits\n"
            "        self.misses += other.misses\n"
            "    def as_dict(self):\n"
            "        return {'hits': self.hits}\n",
            rules=["SL208"],
        )
        assert rules_of(fs) == ["SL208"]
        assert "as_dict" in fs[0].message

    def test_dataclass_counter_fields_fire(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class StageStats:\n"
            "    hits: int = 0\n"
            "    misses: int = 0\n"
            "    def merge(self, other):\n"
            "        self.hits += other.hits\n",
            rules=["SL208"],
        )
        assert rules_of(fs) == ["SL208"]

    def test_incremented_field_counts_as_counter(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "class Agg:\n"
            "    def __init__(self, limit):\n"
            "        self.seen = int(limit)\n"  # not a literal init
            "    def add(self, n):\n"
            "        self.seen += n\n"
            "    def merge(self, other):\n"
            "        pass\n",
            rules=["SL208"],
        )
        assert rules_of(fs) == ["SL208"]

    def test_complete_class_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "class Stats:\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n"
            "    def merge(self, other):\n"
            "        self.hits += other.hits\n"
            "    def stats_dict(self):\n"
            "        return {'hits': self.hits}\n",
            rules=["SL208"],
        )
        assert fs == []

    def test_class_without_merge_ignored(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n",
            rules=["SL208"],
        )
        assert fs == []

    # -- bulk/columnar counter scaling ---------------------------------

    def test_bulk_named_function_literal_bump_fires(self, tmp_path):
        # A bulk-named function bumping a counter by a literal processes
        # N samples but counts 1 — the columnar-parity bug class.
        fs = lint_text(
            tmp_path,
            "class Chain:\n"
            "    def replay_bulk(self, entry, n):\n"
            "        self.hits += 1\n",
            rules=["SL208"],
        )
        assert rules_of(fs) == ["SL208"]
        assert fs[0].severity is Severity.ERROR
        assert "replay_bulk" in fs[0].message

    def test_bulk_function_per_item_bump_in_loop_clean(self, tmp_path):
        # Per-item bumps inside a loop are the scalar idiom and legal
        # in batch functions (e.g. memo probes per address).
        fs = lint_text(
            tmp_path,
            "class Index:\n"
            "    def resolve_run(self, addrs):\n"
            "        for a in addrs:\n"
            "            self.memo_hits += 1\n",
            rules=["SL208"],
        )
        assert fs == []

    def test_bulk_function_scaled_bump_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "class Chain:\n"
            "    def replay_bulk(self, entry, n):\n"
            "        self.hits += n\n",
            rules=["SL208"],
        )
        assert fs == []

    def test_scalar_function_literal_bump_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "class Chain:\n"
            "    def replay(self, entry):\n"
            "        self.hits += 1\n",
            rules=["SL208"],
        )
        assert fs == []


class TestSL209FaultPointCoverage:
    def test_unregistered_point_fires(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "from repro.faults.injector import fire\n"
            "def f():\n"
            "    fire('no.such.point')\n",
            rules=["SL209"],
        )
        assert rules_of(fs) == ["SL209"]
        assert fs[0].severity is Severity.ERROR

    def test_unresolvable_argument_warns(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "from repro.faults.injector import fire\n"
            "def f(point):\n"
            "    fire(point)\n",
            rules=["SL209"],
        )
        assert rules_of(fs) == ["SL209"]
        assert fs[0].severity is Severity.WARNING

    def test_registered_constant_reference_clean(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "from repro.faults import injector as faults\n"
            "def f():\n"
            "    faults.fire(faults.WRITER_SPILL)\n",
            rules=["SL209"],
        )
        assert fs == []

    def test_site_module_missing_fire_fires(self, tmp_path):
        # A tree containing a registered point's site module that never
        # fires the point: the cross-file pass must flag it.
        mod = tmp_path / "repro" / "profiling" / "record_codec.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("x = 1\n")
        report = lint_tree([tmp_path], rules=["SL209"])
        assert report.rule_ids == ("SL209",)
        assert any("writer.spill" in f.message for f in report)

    def test_site_module_with_fire_clean(self, tmp_path):
        mod = tmp_path / "repro" / "profiling" / "record_codec.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "from repro.faults import injector as faults\n"
            "def spill():\n"
            "    faults.fire('writer.spill')\n"
        )
        assert len(lint_tree([tmp_path], rules=["SL209"])) == 0

    def test_repo_registry_in_bijection(self):
        report = lint_tree([REPO_SRC], rules=["SL209"])
        assert len(report) == 0, report.format_text()


class TestRepoTreeUnderFlowRules:
    def test_repo_src_clean_under_dataflow_rules(self):
        report = lint_tree(
            [REPO_SRC],
            rules=["SL205", "SL206", "SL207", "SL208", "SL209"],
        )
        assert len(report) == 0, report.format_text()
