"""Fleet-scale ``viprof lint``: multi-session, parallelism, cache,
baselines, SARIF.

The acceptance bar: a parallel run over many sessions produces findings
identical to the sequential run (order-normalized), the baseline
suppresses exactly what it recorded, ``--fail-on`` gates the exit code,
and the incremental cache changes results never — only work.
"""

import json

import pytest

from repro.cli import main as viprof_main
from repro.errors import StatCheckError
from repro.statcheck import baseline
from repro.statcheck.analyzer import (
    expand_session_args,
    lint_sessions,
)
from repro.statcheck.findings import Finding, FindingReport, Severity
from repro.statcheck.fixtures import write_fixture_session
from repro.statcheck.sarif import report_to_sarif


@pytest.fixture
def fleet(tmp_path):
    """Three sessions: one clean, two with distinct corruption."""
    return [
        write_fixture_session(tmp_path / "s-clean"),
        write_fixture_session(tmp_path / "s-orphan", "orphan"),
        write_fixture_session(tmp_path / "s-stale", "stale-moved"),
    ]


def normalized(report):
    return sorted(f.to_dict().items() for f in report)


class TestParallelParity:
    def test_parallel_matches_sequential(self, fleet):
        seq = lint_sessions(fleet, workers=1)
        par = lint_sessions(fleet, workers=3)
        assert len(seq) > 0
        assert normalized(par) == normalized(seq)

    def test_merge_order_is_input_order(self, fleet):
        # Findings arrive grouped by session, in command-line order.
        par = lint_sessions(fleet, workers=2)
        artifacts = [f.artifact for f in par]
        positions = [
            min(
                i
                for i, a in enumerate(artifacts)
                if str(d) in a
            )
            for d in fleet
            if any(str(d) in a for a in artifacts)
        ]
        assert positions == sorted(positions)

    def test_cli_parallel_sarif(self, fleet, capsys):
        rc = viprof_main(
            ["lint", *map(str, fleet), "--format", "sarif", "--workers", "2"]
        )
        assert rc == 1  # orphan + stale sessions carry errors
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "viprof-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"VP103", "VP105"} <= rule_ids
        assert all(r["ruleId"] in rule_ids for r in run["results"])
        levels = {r["level"] for r in run["results"]}
        assert levels <= {"note", "warning", "error"}
        for r in run["results"]:
            assert "viprofFingerprint/v1" in r["partialFingerprints"]


class TestGlobExpansion:
    def test_glob_expands_sorted(self, fleet, tmp_path):
        dirs = expand_session_args([str(tmp_path / "s-*")])
        assert [d.name for d in dirs] == ["s-clean", "s-orphan", "s-stale"]

    def test_glob_matching_nothing_is_error(self, tmp_path):
        with pytest.raises(StatCheckError, match="no session directories"):
            expand_session_args([str(tmp_path / "nope-*")])

    def test_cli_glob(self, fleet, tmp_path, capsys):
        rc = viprof_main(["lint", str(tmp_path / "s-*")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "VP103" in out and "VP105" in out

    def test_duplicate_sessions_deduped(self, fleet):
        once = lint_sessions([fleet[1]])
        twice = lint_sessions(
            expand_session_args([str(fleet[1]), str(fleet[1])])
        )
        assert normalized(once) == normalized(twice)


class TestBaseline:
    def test_roundtrip_suppresses_exactly(self, fleet, tmp_path, capsys):
        base = tmp_path / "base.json"
        rc = viprof_main(
            ["lint", *map(str, fleet), "--write-baseline", str(base)]
        )
        assert rc == 0
        assert "recorded" in capsys.readouterr().out
        rc = viprof_main(
            ["lint", *map(str, fleet), "--baseline", str(base)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean: no findings" in out and "suppressed" in out

    def test_new_findings_still_fail(self, fleet, tmp_path, capsys):
        base = tmp_path / "base.json"
        # Baseline only the orphan session's findings...
        assert viprof_main(
            ["lint", str(fleet[1]), "--write-baseline", str(base)]
        ) == 0
        capsys.readouterr()
        # ...then lint the full fleet: the stale-moved finding is new.
        rc = viprof_main(
            ["lint", *map(str, fleet), "--baseline", str(base)]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "VP105" in out and "VP103" not in out

    def test_fingerprint_normalizes_session_prefix(self, tmp_path):
        a = tmp_path / "mount-a" / "sess"
        b = tmp_path / "mount-b" / "sess"
        fa = Finding(
            severity=Severity.ERROR, rule_id="VP103",
            artifact=str(a / "samples" / "x.samples"),
            location="sample 7", message="m",
        )
        fb = Finding(
            severity=Severity.ERROR, rule_id="VP103",
            artifact=str(b / "samples" / "x.samples"),
            location="sample 7", message="m",
        )
        assert baseline.finding_fingerprint(
            fa, [a]
        ) == baseline.finding_fingerprint(fb, [b])

    def test_malformed_baseline_is_typed_error(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text("{\"version\": 99}")
        with pytest.raises(StatCheckError, match="baseline"):
            baseline.load_baseline(p)
        p.write_text("not json")
        with pytest.raises(StatCheckError, match="not JSON"):
            baseline.load_baseline(p)


class TestFailOn:
    def test_fail_on_gates_exit_code(self, tmp_path, capsys):
        sess = write_fixture_session(tmp_path / "gap", "epoch-gap")
        fleet = [str(sess)]
        assert viprof_main(["lint", *fleet]) == 0  # warnings only
        assert viprof_main(["lint", "--fail-on", "warning", *fleet]) == 1
        assert viprof_main(["lint", "--fail-on", "info", *fleet]) == 1

    def test_workers_must_be_positive(self, fleet, capsys):
        rc = viprof_main(["lint", str(fleet[0]), "--workers", "0"])
        assert rc == 2
        assert "--workers" in capsys.readouterr().err


class TestIncrementalCache:
    def test_cache_preserves_findings(self, fleet, tmp_path):
        cache = tmp_path / "cache.json"
        cold = lint_sessions(fleet, cache_path=cache)
        assert cache.is_file()
        warm = lint_sessions(fleet, cache_path=cache)
        assert normalized(warm) == normalized(cold)

    def test_cache_hits_skip_relinting(self, fleet, tmp_path, monkeypatch):
        cache = tmp_path / "cache.json"
        lint_sessions(fleet, cache_path=cache)
        import repro.statcheck.analyzer as analyzer_mod

        def boom(payload):
            raise AssertionError(f"cache miss for {payload[0]}")

        monkeypatch.setattr(analyzer_mod, "_lint_session_worker", boom)
        warm = lint_sessions(fleet, cache_path=cache)
        assert len(warm) > 0

    def test_content_change_invalidates(self, fleet, tmp_path):
        cache = tmp_path / "cache.json"
        before = lint_sessions([fleet[0]], cache_path=cache)
        assert len(before) == 0
        # Corrupt the clean session in place: next run must re-lint.
        sample = next((fleet[0] / "samples").iterdir())
        sample.write_bytes(b"XX" + sample.read_bytes()[2:])
        after = lint_sessions([fleet[0]], cache_path=cache)
        assert len(after) > 0

    def test_rule_selection_keys_cache(self, fleet, tmp_path):
        cache = tmp_path / "cache.json"
        narrow = lint_sessions(
            [fleet[1]], rule_ids=["VP101"], cache_path=cache
        )
        assert len(narrow) == 0
        full = lint_sessions([fleet[1]], cache_path=cache)
        assert any(f.rule_id == "VP103" for f in full)

    def test_corrupt_cache_file_is_cold_start(self, fleet, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("garbage{{{")
        report = lint_sessions(fleet, cache_path=cache)
        assert normalized(report) == normalized(lint_sessions(fleet))


class TestSarifRendering:
    def test_location_line_becomes_region(self):
        r = FindingReport()
        r.add(Severity.ERROR, "SL205", "repro/x.py", "line 12", "leak")
        doc = report_to_sarif(
            r,
            "t",
            [
                {
                    "id": "SL205",
                    "name": "resource-leak",
                    "description": "d",
                    "severity": Severity.ERROR,
                }
            ],
        )
        res = doc["runs"][0]["results"][0]
        loc = res["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] == 12
        assert res["ruleIndex"] == 0

    def test_freeform_location_folded_into_message(self):
        r = FindingReport()
        r.add(Severity.WARNING, "VP102", "sess", "epochs 1..3", "gap")
        doc = report_to_sarif(r, "t", [])
        res = doc["runs"][0]["results"][0]
        assert res["message"]["text"].startswith("epochs 1..3: ")
        assert res["level"] == "warning"
