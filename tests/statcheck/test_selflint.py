"""Source self-lint tests: each rule on crafted sources + the real tree."""

from pathlib import Path

import pytest

from repro.errors import StatCheckError
from repro.statcheck.findings import Severity
from repro.statcheck.selflint import lint_source, lint_tree

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def lint_text(tmp_path, text, name="mod.py", subdir=""):
    d = tmp_path / subdir if subdir else tmp_path
    d.mkdir(parents=True, exist_ok=True)
    p = d / name
    p.write_text(text)
    return lint_source(p, root=tmp_path)


def rules_of(findings):
    return sorted({f.rule_id for f in findings})


class TestSL201IntAddresses:
    def test_float_annotated_param_flagged(self, tmp_path):
        fs = lint_text(tmp_path, "def f(addr: float) -> None: ...\n")
        assert rules_of(fs) == ["SL201"]

    def test_float_annotated_assignment_flagged(self, tmp_path):
        fs = lint_text(tmp_path, "start_address: float = 0\n")
        assert rules_of(fs) == ["SL201"]

    def test_float_default_flagged(self, tmp_path):
        fs = lint_text(tmp_path, "def f(map_size=4.0) -> None: ...\n")
        assert rules_of(fs) == ["SL201"]

    def test_kwonly_float_default_flagged(self, tmp_path):
        fs = lint_text(tmp_path, "def f(*, pc=1.5) -> None: ...\n")
        assert rules_of(fs) == ["SL201"]

    def test_int_quantities_pass(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f(addr: int, size: int = 4, scale: float = 1.0) -> int:\n"
            "    return addr + size\n",
        )
        assert fs == []

    def test_non_quantity_float_ok(self, tmp_path):
        fs = lint_text(tmp_path, "time_scale: float = 0.25\n")
        assert fs == []


class TestSL202RaiseDiscipline:
    def test_builtin_raise_flagged(self, tmp_path):
        fs = lint_text(
            tmp_path, "def f() -> None:\n    raise ValueError('x')\n"
        )
        assert rules_of(fs) == ["SL202"]

    def test_repro_error_ok(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "from repro.errors import ConfigError\n"
            "def f() -> None:\n    raise ConfigError('x')\n",
        )
        assert fs == []

    def test_bare_reraise_ok(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f() -> None:\n"
            "    try:\n        pass\n"
            "    except ValueError:\n        raise\n",
        )
        assert fs == []

    def test_variable_reraise_ok(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f(e: Exception) -> None:\n    raise e\n",
        )
        assert fs == []

    def test_not_implemented_ok(self, tmp_path):
        fs = lint_text(
            tmp_path, "def f() -> None:\n    raise NotImplementedError\n"
        )
        assert fs == []

    def test_raise_class_without_call_flagged(self, tmp_path):
        fs = lint_text(tmp_path, "def f() -> None:\n    raise TypeError\n")
        assert rules_of(fs) == ["SL202"]


class TestSL203NakedExcept:
    def test_naked_except_flagged(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f() -> None:\n"
            "    try:\n        pass\n"
            "    except:\n        pass\n",
        )
        assert rules_of(fs) == ["SL203"]

    def test_typed_except_ok(self, tmp_path):
        fs = lint_text(
            tmp_path,
            "def f() -> None:\n"
            "    try:\n        pass\n"
            "    except Exception:\n        pass\n",
        )
        assert fs == []


class TestSL204PublicAnnotations:
    SRC = (
        "def public(x, y=1):\n    return x\n"
        "def _private(x):\n    return x\n"
    )

    def test_scope_limited_to_viprof_and_profiling(self, tmp_path):
        # Outside the scoped dirs: no SL204.
        assert lint_text(tmp_path, self.SRC, subdir="repro/analysis") == []
        fs = lint_text(tmp_path, self.SRC, subdir="repro/viprof")
        assert rules_of(fs) == ["SL204"]
        fs = lint_text(tmp_path, self.SRC, subdir="repro/profiling")
        assert rules_of(fs) == ["SL204"]

    def test_private_and_nested_skipped(self, tmp_path):
        src = (
            "def public(x: int) -> int:\n"
            "    def inner(y):\n        return y\n"
            "    return inner(x)\n"
        )
        assert lint_text(tmp_path, src, subdir="repro/viprof") == []

    def test_method_annotations_required(self, tmp_path):
        src = (
            "class C:\n"
            "    def public(self, x):\n        return x\n"
        )
        fs = lint_text(tmp_path, src, subdir="repro/viprof")
        assert rules_of(fs) == ["SL204"]
        assert any("unannotated" in f.message for f in fs)
        assert any("return" in f.message for f in fs)

    def test_self_needs_no_annotation(self, tmp_path):
        src = (
            "class C:\n"
            "    def public(self, x: int) -> int:\n        return x\n"
        )
        assert lint_text(tmp_path, src, subdir="repro/viprof") == []


class TestTreeLint:
    def test_syntax_error_raises_statcheck_error(self, tmp_path):
        (tmp_path / "bad.py").write_text("def f(:\n")
        with pytest.raises(StatCheckError, match="cannot lint"):
            lint_tree([tmp_path])

    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(StatCheckError, match="no such file"):
            lint_tree([tmp_path / "ghost"])

    def test_single_file_root(self, tmp_path):
        p = tmp_path / "one.py"
        p.write_text("def f() -> None:\n    raise OSError('x')\n")
        report = lint_tree([p])
        assert report.count(Severity.ERROR) == 1

    def test_repo_src_is_clean(self):
        """The enforced invariant: our own tree passes its own lint."""
        report = lint_tree([REPO_SRC])
        assert report.count(Severity.ERROR) == 0, report.format_text()
