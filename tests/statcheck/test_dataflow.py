"""Unit tests for the CFG builder + forward may-analysis engine.

The rule-level behaviour (leaks, worker state) is covered in
test_selflint_dataflow.py; here we pin the engine itself with a tiny
"assigned names reach the exit" analysis — gen on ``x = ...``, kill on
``del x`` — which exercises exactly the edges the builder creates.
"""

import ast
import textwrap

from repro.statcheck.dataflow import (
    Header,
    build_cfg,
    iter_functions,
    run_forward,
)


def cfg_of(src):
    tree = ast.parse(textwrap.dedent(src))
    fns = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    assert len(fns) == 1
    return build_cfg(fns[0])


def _names_transfer(blk, facts):
    live = set(facts)
    for el in blk.elements:
        node = el.node if isinstance(el, Header) else el
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    live.add(t.id)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    live.discard(t.id)
    return frozenset(live)


def at_exit(src):
    cfg = cfg_of(src)
    ins = run_forward(cfg, _names_transfer)
    return set(ins[cfg.exit])


class TestStraightLine:
    def test_linear_facts_reach_exit(self):
        assert at_exit(
            """
            def f():
                x = 1
                y = 2
            """
        ) == {"x", "y"}

    def test_code_after_return_is_unreachable(self):
        assert at_exit(
            """
            def f():
                x = 1
                return x
                y = 2
            """
        ) == {"x"}


class TestBranches:
    def test_may_analysis_unions_branches(self):
        # x assigned on only one path still *may* reach the exit.
        assert at_exit(
            """
            def f(c):
                if c:
                    x = 1
                else:
                    y = 2
            """
        ) == {"x", "y"}

    def test_both_branches_return(self):
        assert at_exit(
            """
            def f(c):
                if c:
                    x = 1
                    return x
                else:
                    y = 2
                    return y
            """
        ) == {"x", "y"}

    def test_header_holds_test_expression(self):
        cfg = cfg_of(
            """
            def f(c):
                if c:
                    pass
            """
        )
        headers = [
            el
            for blk in cfg
            for el in blk.elements
            if isinstance(el, Header)
        ]
        assert len(headers) == 1
        assert isinstance(headers[0].node, ast.If)
        assert isinstance(headers[0].exprs[0], ast.Name)


class TestLoops:
    def test_loop_body_fact_reaches_exit(self):
        assert at_exit(
            """
            def f(items):
                for i in items:
                    x = i
            """
        ) == {"x"}

    def test_break_reaches_loop_exit(self):
        assert at_exit(
            """
            def f(items):
                for i in items:
                    x = 1
                    break
            """
        ) == {"x"}

    def test_while_converges(self):
        # Fixed point must terminate despite the back edge.
        assert at_exit(
            """
            def f(n):
                while n:
                    a = 1
                    del a
                    b = 2
            """
        ) == {"b"}


class TestExceptions:
    def test_plain_raise_routes_to_exit(self):
        assert at_exit(
            """
            def f():
                x = 1
                raise KeyError(x)
            """
        ) == {"x"}

    def test_raise_in_try_lands_in_handler_only(self):
        # The handler deletes x, so nothing must leak around it to the
        # exit: the raise may not take a direct exit edge.
        assert at_exit(
            """
            def f():
                try:
                    x = 1
                    raise KeyError
                except KeyError:
                    del x
            """
        ) == set()

    def test_try_body_blocks_are_statement_granular(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    a = 1
                    b = 2
                except ValueError:
                    pass
            """
        )
        for blk in cfg:
            if blk.pre_succs:
                assert len(blk.elements) <= 1

    def test_handler_sees_pre_state_of_failing_statement(self):
        # If `x = boom()` raises, x was never bound: a fact gen'd by
        # that statement must not appear in the handler via its own
        # pre-edge.  The handler returns, so the only way `x` reaches
        # the exit is the normal (non-raising) path.
        src = """
            def f():
                try:
                    x = 1
                except ValueError:
                    return None
                del x
            """
        assert at_exit(src) == set()

    def test_finally_entry_carries_its_body(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    x = 1
                finally:
                    del x
            """
        )
        bodies = [b.finally_body for b in cfg if b.finally_body]
        assert len(bodies) == 1
        assert isinstance(bodies[0][0], ast.Delete)

    def test_return_routes_through_finally(self):
        # The finally's `del x` must apply to the early-return path too.
        assert at_exit(
            """
            def f(c):
                x = 1
                try:
                    if c:
                        return None
                    y = 2
                finally:
                    del x
            """
        ) == {"y"}

    def test_break_inside_try_stays_inside_loops_finally_scope(self):
        # The try/finally is entered *inside* the loop, so `break` must
        # route through it; facts killed there never reach the exit.
        assert at_exit(
            """
            def f(items):
                for i in items:
                    try:
                        x = 1
                        break
                    finally:
                        del x
            """
        ) == set()


class TestIterFunctions:
    def test_methods_and_nested_found(self):
        tree = ast.parse(
            "class C:\n"
            "    def m(self):\n"
            "        def inner():\n"
            "            pass\n"
        )
        assert {fn.name for fn in iter_functions(tree)} == {"m", "inner"}
