"""Artifact-rule tests: seeded corruptions, tolerant loading, verdicts."""

import json
from pathlib import Path

import pytest

from repro.errors import StatCheckError
from repro.profiling.model import RawSample
from repro.profiling.samplefile import SampleFileWriter
from repro.statcheck.analyzer import lint_session
from repro.statcheck.artifacts import load_session
from repro.statcheck.findings import Severity
from repro.statcheck.fixtures import (
    CORRUPTIONS,
    EXPECTED_RULE,
    write_all_fixtures,
    write_fixture_session,
)
from repro.viprof.codemap import CodeMapRecord, CodeMapWriter


class TestSeededCorruptionFixtures:
    """The acceptance criteria: all five corruptions caught, clean passes."""

    def test_clean_session_has_no_findings(self, tmp_path):
        sess = write_fixture_session(tmp_path / "clean")
        report = lint_session(sess)
        assert len(report) == 0
        assert report.exit_code() == 0

    @pytest.mark.parametrize("corruption", CORRUPTIONS)
    def test_corruption_detected_under_its_rule(self, tmp_path, corruption):
        sess = write_fixture_session(tmp_path / corruption, corruption)
        report = lint_session(sess)
        expected = EXPECTED_RULE[corruption]
        assert report.by_rule(expected), report.format_text()
        # ... and *only* that rule fires: each corruption is surgical.
        assert report.rule_ids == (expected,), report.format_text()
        assert report.exit_code(fail_on=Severity.WARNING) == 1

    def test_write_all_fixtures(self, tmp_path):
        sessions = write_all_fixtures(tmp_path)
        assert set(sessions) == {"clean", *CORRUPTIONS}
        for p in sessions.values():
            assert (p / "meta.json").is_file()

    def test_unknown_corruption_rejected(self, tmp_path):
        with pytest.raises(StatCheckError, match="unknown corruption"):
            write_fixture_session(tmp_path / "x", "made-up")

    def test_existing_dest_rejected(self, tmp_path):
        with pytest.raises(StatCheckError, match="already exists"):
            write_fixture_session(tmp_path)

    def test_checked_in_fixture_session_is_clean(self):
        # CI lints this session; keep the copy on disk in sync with the
        # generator.
        sess = (
            Path(__file__).resolve().parents[1]
            / "fixtures" / "lint-session"
        )
        report = lint_session(sess)
        assert len(report) == 0, report.format_text()


class TestBatchedFixtures:
    """Sessions emitted through the batched write path behave identically
    under every artifact rule — the write path is not an observable."""

    def test_batched_clean_session_has_no_findings(self, tmp_path):
        sess = write_fixture_session(tmp_path / "clean", batch=True)
        report = lint_session(sess)
        assert len(report) == 0, report.format_text()

    @pytest.mark.parametrize("corruption", CORRUPTIONS)
    def test_batched_corruption_detected(self, tmp_path, corruption):
        sess = write_fixture_session(
            tmp_path / corruption, corruption, batch=True
        )
        report = lint_session(sess)
        assert report.rule_ids == (EXPECTED_RULE[corruption],), (
            report.format_text()
        )

    def test_batched_sample_bytes_match_per_record(self, tmp_path):
        a = write_fixture_session(tmp_path / "seq")
        b = write_fixture_session(tmp_path / "bat", batch=True)
        name = "GLOBAL_POWER_EVENTS.samples"
        assert (a / "samples" / name).read_bytes() == (
            b / "samples" / name
        ).read_bytes()
        assert json.loads((b / "meta.json").read_text())[
            "write_path"
        ] == "batched"

    def test_checked_in_batched_fixture_session_is_clean(self):
        # CI lints this session too; regenerate with
        # ``python -m repro.statcheck.fixtures --batch`` semantics
        # (write_fixture_session(..., batch=True)).
        sess = (
            Path(__file__).resolve().parents[1]
            / "fixtures" / "lint-session-batched"
        )
        report = lint_session(sess)
        assert len(report) == 0, report.format_text()
        meta = json.loads((sess / "meta.json").read_text())
        assert meta["write_path"] == "batched"


class TestTolerantLoading:
    def test_not_a_session_dir(self, tmp_path):
        with pytest.raises(StatCheckError, match="not a VIProf session"):
            load_session(tmp_path)

    def test_missing_dir(self, tmp_path):
        with pytest.raises(StatCheckError, match="not a directory"):
            load_session(tmp_path / "nope")

    def test_malformed_map_line_becomes_vp100(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        path = sess / "jit-maps" / "jit-map.00001"
        path.write_text(
            path.read_text() + "garbage line that is not a record\n"
        )
        # Editing the map invalidates the compiled arena; drop it so the
        # only ERROR left is the VP100 this test is about (VP111 owns
        # stale-arena detection and has its own fixture corruption).
        (sess / "jit-maps.arena").unlink()
        report = lint_session(sess)
        vp100 = report.by_rule("VP100")
        assert vp100 and "malformed" in vp100[0].message
        # The rest of the artifact is still analyzed (no other errors).
        assert report.count(Severity.ERROR) == 1

    def test_corrupt_sample_file_becomes_vp100(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        bad = sess / "samples" / "GLOBAL_POWER_EVENTS.samples"
        bad.write_bytes(b"XXXX not a sample file")
        report = lint_session(sess)
        assert report.by_rule("VP100")

    def test_bad_meta_json_becomes_vp100(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        (sess / "meta.json").write_text("{not json")
        report = lint_session(sess)
        assert any(
            "metadata" in f.message for f in report.by_rule("VP100")
        )

    def test_bad_registration_becomes_vp100(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        meta = json.loads((sess / "meta.json").read_text())
        meta["registration"] = {"task_id": "nope"}
        (sess / "meta.json").write_text(json.dumps(meta))
        report = lint_session(sess)
        assert any(
            "registration" in f.message for f in report.by_rule("VP100")
        )

    def test_header_filename_mismatch_becomes_vp100(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        (sess / "jit-maps" / "jit-map.00001").rename(
            sess / "jit-maps" / "jit-map.00009"
        )
        report = lint_session(sess)
        assert any(
            "filename epoch" in f.message for f in report.by_rule("VP100")
        )

    def test_loads_without_metadata(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        (sess / "meta.json").unlink()
        arts = load_session(sess)
        assert arts.registration is None
        assert arts.epochs == (0, 1, 2)


class TestIndividualRules:
    def test_orphan_check_skips_without_registration(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s", corruption="orphan")
        (sess / "meta.json").unlink()
        report = lint_session(sess, rule_ids=["VP103"])
        assert report.count(Severity.ERROR) == 0
        assert any(f.severity is Severity.INFO for f in report)

    def test_orphan_with_negative_epoch_searches_all_maps(self, tmp_path):
        # A sample with epoch -1 inside the heap: resolvable via any map,
        # so it must NOT be an orphan.
        sess = write_fixture_session(tmp_path / "s")
        with SampleFileWriter(
            sess / "samples" / "EXTRA.samples", "EXTRA", 1000
        ) as w:
            w.write(RawSample(
                pc=0x6080_1010, event_name="EXTRA", task_id=42,
                kernel_mode=False, cycle=9_000, epoch=-1,
            ))
        report = lint_session(sess, rule_ids=["VP103"])
        assert len(report) == 0

    def test_epoch_tag_regression_detected(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        with SampleFileWriter(
            sess / "samples" / "EXTRA.samples", "EXTRA", 1000
        ) as w:
            w.write(RawSample(
                pc=0x6080_1010, event_name="EXTRA", task_id=42,
                kernel_mode=False, cycle=1_000, epoch=2,
            ))
            w.write(RawSample(
                pc=0x6080_1010, event_name="EXTRA", task_id=42,
                kernel_mode=False, cycle=2_000, epoch=0,
            ))
        report = lint_session(sess, rule_ids=["VP106"])
        assert any("regresses" in f.message for f in report)

    def test_epoch_tag_beyond_newest_map_warns(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        with SampleFileWriter(
            sess / "samples" / "EXTRA.samples", "EXTRA", 1000
        ) as w:
            w.write(RawSample(
                pc=0xC000_1000, event_name="EXTRA", task_id=42,
                kernel_mode=True, cycle=9_000, epoch=7,
            ))
        report = lint_session(sess, rule_ids=["VP106"])
        assert any(
            f.severity is Severity.WARNING and "beyond" in f.message
            for f in report
        )

    def test_invalid_epoch_tag_detected(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        with SampleFileWriter(
            sess / "samples" / "EXTRA.samples", "EXTRA", 1000
        ) as w:
            w.write(RawSample(
                pc=0xC000_1000, event_name="EXTRA", task_id=42,
                kernel_mode=True, cycle=9_000, epoch=-5,
            ))
        report = lint_session(sess, rule_ids=["VP106"])
        assert any("invalid epoch tag" in f.message for f in report)

    def test_moved_flag_ok_when_signature_seen_earlier(self, tmp_path):
        # The clean fixture has two legitimately moved records; VP105
        # alone must find nothing.
        sess = write_fixture_session(tmp_path / "s")
        report = lint_session(sess, rule_ids=["VP105"])
        assert len(report) == 0

    def test_duplicate_epoch_map_is_vp100(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        # Second file whose header claims epoch 1 again.
        src = (sess / "jit-maps" / "jit-map.00001").read_text()
        (sess / "jit-maps" / "jit-map.00004").write_text(
            src.replace("epoch 1", "epoch 4", 1)
        )
        # epoch-4 file parses fine; now clone a true duplicate.
        dup = src  # header says epoch 1
        (sess / "jit-maps" / "jit-map.00007").write_text(dup)
        report = lint_session(sess)
        assert any(
            "duplicate map" in f.message or "filename epoch" in f.message
            for f in report.by_rule("VP100")
        )

    def test_unknown_rule_id_rejected(self, tmp_path):
        sess = write_fixture_session(tmp_path / "s")
        with pytest.raises(StatCheckError, match="unknown rule id"):
            lint_session(sess, rule_ids=["VP999"])

    def test_finding_cap_summarized(self, tmp_path):
        # 60+ orphan samples: the engine caps per-rule findings and says so.
        sess = write_fixture_session(tmp_path / "s")
        with SampleFileWriter(
            sess / "samples" / "EXTRA.samples", "EXTRA", 1000
        ) as w:
            for i in range(60):
                w.write(RawSample(
                    pc=0x61F0_0000 + i * 8, event_name="EXTRA", task_id=42,
                    kernel_mode=False, cycle=10_000 + i, epoch=2,
                ))
        report = lint_session(sess, rule_ids=["VP103"])
        errors = [f for f in report if f.severity is Severity.ERROR]
        assert len(errors) == 50
        assert any("suppressed" in f.message for f in report)


class TestOverlapViaWriter:
    def test_writer_can_produce_overlap_and_lint_catches_it(self, tmp_path):
        # CodeMapWriter does not validate overlaps (the runtime CodeMap
        # does); the lint must catch what slipped to disk.
        sess = tmp_path / "s"
        w = CodeMapWriter(sess / "jit-maps")
        w.write(0, [
            CodeMapRecord(address=0x1000, size=0x200, tier="b", name="A"),
            CodeMapRecord(address=0x1100, size=0x200, tier="b", name="B"),
        ])
        report = lint_session(sess, rule_ids=["VP101"])
        assert report.by_rule("VP101")


class TestSalvageRules:
    """VP107-VP109: the salvage manifest must be honest about its losses."""

    @pytest.fixture
    def salvaged(self, tmp_path):
        from repro.statcheck.fixtures import write_damaged_fixture_session

        return write_damaged_fixture_session(tmp_path / "damaged")

    @staticmethod
    def _edit_manifest(sess, mutate):
        path = sess / "salvage.json"
        manifest = json.loads(path.read_text())
        mutate(manifest)
        path.write_text(json.dumps(manifest))

    def test_honest_salvage_has_no_errors(self, salvaged):
        report = lint_session(salvaged)
        assert report.exit_code(fail_on=Severity.WARNING) == 0, (
            report.format_text()
        )
        # The damage itself is still *visible*, at INFO.
        assert report.by_rule("VP102") and report.by_rule("VP103")
        assert all(f.severity is Severity.INFO for f in report)

    def test_checked_in_damaged_fixture_is_accounted(self):
        sess = (
            Path(__file__).resolve().parents[1]
            / "fixtures" / "lint-session-damaged"
        )
        report = lint_session(sess)
        assert report.exit_code(fail_on=Severity.WARNING) == 0, (
            report.format_text()
        )
        assert (sess / "salvage.json").is_file()
        assert (sess / "jit-maps" / "quarantine").is_dir()

    def test_quarantine_without_manifest_is_vp107(self, salvaged):
        (salvaged / "salvage.json").unlink()
        report = lint_session(salvaged, rule_ids=["VP107"])
        assert any(
            "without a salvage manifest" in f.message
            for f in report.by_rule("VP107")
        )

    def test_manifest_naming_missing_file_is_vp107(self, salvaged):
        self._edit_manifest(
            salvaged,
            lambda m: m["sample_files"].append(
                {"path": "samples/GHOST.samples", "action": "intact"}
            ),
        )
        report = lint_session(salvaged, rule_ids=["VP107"])
        assert any(
            "no such file" in f.message for f in report.by_rule("VP107")
        )

    def test_unaccounted_artifact_is_vp107(self, salvaged):
        with SampleFileWriter(
            salvaged / "samples" / "EXTRA.samples", "EXTRA", 1000
        ) as w:
            w.write(RawSample(
                pc=0xC000_1000, event_name="EXTRA", task_id=42,
                kernel_mode=True, cycle=1_000, epoch=0,
            ))
        report = lint_session(salvaged, rule_ids=["VP107"])
        assert any(
            "not accounted for" in f.message for f in report.by_rule("VP107")
        )

    def test_survivor_record_count_mismatch_is_vp107(self, salvaged):
        self._edit_manifest(
            salvaged,
            lambda m: m["sample_files"][0].__setitem__("records_kept", 99),
        )
        report = lint_session(salvaged, rule_ids=["VP107"])
        assert any(
            "99 records kept" in f.message for f in report.by_rule("VP107")
        )

    def test_survivor_still_torn_is_vp107(self, salvaged):
        path = salvaged / "samples" / "GLOBAL_POWER_EVENTS.samples"
        path.write_bytes(path.read_bytes() + b"\x01\x02\x03")
        report = lint_session(salvaged, rule_ids=["VP107"])
        assert any(
            "torn record" in f.message for f in report.by_rule("VP107")
        )

    def test_unknown_version_is_vp107(self, salvaged):
        self._edit_manifest(
            salvaged, lambda m: m.__setitem__("version", 99)
        )
        report = lint_session(salvaged, rule_ids=["VP107"])
        assert any(
            "version 99" in f.message for f in report.by_rule("VP107")
        )

    def test_malformed_manifest_structure_is_vp107(self, salvaged):
        self._edit_manifest(
            salvaged, lambda m: m.__setitem__("sample_files", "nope")
        )
        report = lint_session(salvaged, rule_ids=["VP107"])
        assert any(
            "malformed salvage manifest" in f.message
            for f in report.by_rule("VP107")
        )

    def test_quarantined_epochs_mismatch_is_vp108(self, salvaged):
        self._edit_manifest(
            salvaged, lambda m: m.__setitem__("quarantined_epochs", [])
        )
        report = lint_session(salvaged, rule_ids=["VP108"])
        assert any(
            "quarantined_epochs" in f.message
            for f in report.by_rule("VP108")
        )

    def test_healthy_map_shadowing_quarantine_is_vp108(self, salvaged):
        # A healthy epoch-1 map reappears while the manifest still says
        # epoch 1 is quarantined: resolution would trust a suspect epoch.
        CodeMapWriter(salvaged / "jit-maps").write(1, [
            CodeMapRecord(
                address=0x6081_0000, size=0x100, tier="base", name="X.y"
            ),
        ])
        report = lint_session(salvaged, rule_ids=["VP108"])
        assert any(
            "not isolated" in f.message for f in report.by_rule("VP108")
        )

    def test_wrong_torn_at_is_vp109(self, salvaged):
        self._edit_manifest(
            salvaged,
            lambda m: m["sample_files"][0].__setitem__(
                "torn_at", m["sample_files"][0]["torn_at"] + 1
            ),
        )
        report = lint_session(salvaged, rule_ids=["VP109"])
        assert any(
            "torn_at" in f.message for f in report.by_rule("VP109")
        )

    def test_whole_record_drop_claim_is_vp109(self, salvaged):
        # A truncation by construction drops 1..record_size-1 bytes;
        # claiming 0 (or a whole record) means the math does not add up.
        self._edit_manifest(
            salvaged,
            lambda m: m["sample_files"][0].__setitem__("bytes_dropped", 0),
        )
        report = lint_session(salvaged, rule_ids=["VP109"])
        assert any(
            "bytes_dropped" in f.message for f in report.by_rule("VP109")
        )

    def test_intact_with_losses_is_vp109(self, salvaged):
        def mutate(m):
            m["sample_files"][0]["action"] = "intact"
            m["sample_files"][0]["bytes_dropped"] = 7

        self._edit_manifest(salvaged, mutate)
        report = lint_session(salvaged, rule_ids=["VP109"])
        assert any(
            "intact file claims" in f.message
            for f in report.by_rule("VP109")
        )

    def test_top_epoch_underclaim_is_vp109(self, salvaged):
        self._edit_manifest(
            salvaged, lambda m: m.__setitem__("top_epoch", 0)
        )
        report = lint_session(salvaged, rule_ids=["VP109"])
        assert any(
            "top_epoch" in f.location for f in report.by_rule("VP109")
        )

    def test_unsalvaged_session_skips_salvage_rules(self, tmp_path):
        sess = write_fixture_session(tmp_path / "clean")
        report = lint_session(
            sess, rule_ids=["VP107", "VP108", "VP109"]
        )
        assert len(report) == 0
