"""Unit tests for the findings model shared by both lint front ends."""

import json

from repro.statcheck.findings import Finding, FindingReport, Severity


def f(sev=Severity.ERROR, rule="VP101", artifact="a", loc="x", msg="m"):
    return Finding(
        severity=sev, rule_id=rule, artifact=artifact, location=loc,
        message=msg,
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.WARNING <= Severity.WARNING
        assert max(
            [Severity.INFO, Severity.ERROR, Severity.WARNING],
            key=lambda s: s.rank,
        ) is Severity.ERROR


class TestFindingReport:
    def test_empty_report(self):
        r = FindingReport()
        assert len(r) == 0
        assert r.worst is None
        assert r.exit_code() == 0
        assert r.format_text() == "clean: no findings"

    def test_add_and_counts(self):
        r = FindingReport()
        r.add(Severity.ERROR, "VP101", "m.txt", "epoch 1", "boom")
        r.add(Severity.WARNING, "VP102", "s", "-", "meh")
        r.add(Severity.WARNING, "VP102", "s", "-", "meh2")
        assert r.count(Severity.ERROR) == 1
        assert r.count(Severity.WARNING) == 2
        assert r.worst is Severity.ERROR
        assert r.rule_ids == ("VP101", "VP102")
        assert len(r.by_rule("VP102")) == 2

    def test_exit_code_thresholds(self):
        r = FindingReport()
        r.add(Severity.WARNING, "VP102", "s", "-", "meh")
        assert r.exit_code(fail_on=Severity.ERROR) == 0
        assert r.exit_code(fail_on=Severity.WARNING) == 1
        assert r.exit_code(fail_on=Severity.INFO) == 1

    def test_text_sorted_most_severe_first(self):
        r = FindingReport()
        r.add(Severity.INFO, "VP103", "s", "-", "fyi")
        r.add(Severity.ERROR, "VP101", "m", "epoch 0", "bad")
        lines = r.format_text().splitlines()
        assert lines[0].startswith("ERROR")
        assert "1 error(s), 0 warning(s), 1 info" in lines[-1]

    def test_json_roundtrips(self):
        r = FindingReport()
        r.add(Severity.ERROR, "VP104", "map", "epoch 2", "collision")
        data = json.loads(r.format_json())
        assert data["counts"]["error"] == 1
        assert data["findings"][0]["rule_id"] == "VP104"
        assert data["findings"][0]["location"] == "epoch 2"

    def test_format_line(self):
        line = f().format_line()
        assert "ERROR" in line and "VP101" in line and "a:x: m" in line
