"""Unit tests for the findings model shared by both lint front ends."""

import json

import pytest

from repro.errors import StatCheckError
from repro.statcheck.findings import Finding, FindingReport, Severity
from repro.statcheck.rules import get_rule


def f(sev=Severity.ERROR, rule="VP101", artifact="a", loc="x", msg="m"):
    return Finding(
        severity=sev, rule_id=rule, artifact=artifact, location=loc,
        message=msg,
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.WARNING <= Severity.WARNING
        assert max(
            [Severity.INFO, Severity.ERROR, Severity.WARNING],
            key=lambda s: s.rank,
        ) is Severity.ERROR

    def test_parse_accepts_every_value(self):
        for sev in Severity:
            assert Severity.parse(sev.value) is sev

    def test_parse_rejects_junk(self):
        with pytest.raises(StatCheckError, match="unknown severity"):
            Severity.parse("fatal")
        with pytest.raises(StatCheckError, match="unknown severity"):
            Severity.parse(3)


class TestRoundTrip:
    def test_finding_json_finding_is_lossless(self):
        orig = f(
            sev=Severity.WARNING,
            rule="SL207",
            artifact="repro/profiling/record_codec.py",
            loc="line 31",
            msg='format "<QIIIq" is 29 bytes but CORE_RECORD_SIZE is 31',
        )
        back = Finding.from_dict(json.loads(json.dumps(orig.to_dict())))
        assert back == orig
        assert back.to_dict() == orig.to_dict()

    def test_from_dict_requires_a_dict(self):
        with pytest.raises(StatCheckError, match="must be a dict"):
            Finding.from_dict(["severity", "error"])

    def test_from_dict_rejects_missing_keys(self):
        data = f().to_dict()
        del data["location"]
        with pytest.raises(StatCheckError, match="location"):
            Finding.from_dict(data)

    def test_from_dict_rejects_bad_severity(self):
        data = f().to_dict()
        data["severity"] = "catastrophic"
        with pytest.raises(StatCheckError, match="unknown severity"):
            Finding.from_dict(data)

    def test_from_dict_rejects_non_string_fields(self):
        data = f().to_dict()
        data["message"] = 7
        with pytest.raises(StatCheckError, match="message"):
            Finding.from_dict(data)


class TestRuleLookup:
    def test_known_rule_resolves(self):
        rule = get_rule("VP101")
        assert rule.rule_id == "VP101"

    def test_unknown_rule_id_raises_typed_error(self):
        with pytest.raises(StatCheckError, match="VP999"):
            get_rule("VP999")


class TestFindingReport:
    def test_empty_report(self):
        r = FindingReport()
        assert len(r) == 0
        assert r.worst is None
        assert r.exit_code() == 0
        assert r.format_text() == "clean: no findings"

    def test_add_and_counts(self):
        r = FindingReport()
        r.add(Severity.ERROR, "VP101", "m.txt", "epoch 1", "boom")
        r.add(Severity.WARNING, "VP102", "s", "-", "meh")
        r.add(Severity.WARNING, "VP102", "s", "-", "meh2")
        assert r.count(Severity.ERROR) == 1
        assert r.count(Severity.WARNING) == 2
        assert r.worst is Severity.ERROR
        assert r.rule_ids == ("VP101", "VP102")
        assert len(r.by_rule("VP102")) == 2

    def test_exit_code_thresholds(self):
        r = FindingReport()
        r.add(Severity.WARNING, "VP102", "s", "-", "meh")
        assert r.exit_code(fail_on=Severity.ERROR) == 0
        assert r.exit_code(fail_on=Severity.WARNING) == 1
        assert r.exit_code(fail_on=Severity.INFO) == 1

    def test_text_sorted_most_severe_first(self):
        r = FindingReport()
        r.add(Severity.INFO, "VP103", "s", "-", "fyi")
        r.add(Severity.ERROR, "VP101", "m", "epoch 0", "bad")
        lines = r.format_text().splitlines()
        assert lines[0].startswith("ERROR")
        assert "1 error(s), 0 warning(s), 1 info" in lines[-1]

    def test_json_roundtrips(self):
        r = FindingReport()
        r.add(Severity.ERROR, "VP104", "map", "epoch 2", "collision")
        data = json.loads(r.format_json())
        assert data["counts"]["error"] == 1
        assert data["findings"][0]["rule_id"] == "VP104"
        assert data["findings"][0]["location"] == "epoch 2"

    def test_format_line(self):
        line = f().format_line()
        assert "ERROR" in line and "VP101" in line and "a:x: m" in line
