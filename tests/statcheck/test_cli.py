"""CLI-level tests: ``viprof lint``, ``-m`` front ends, exit codes."""

import json

import pytest

from repro.cli import main as viprof_main
from repro.statcheck.analyzer import main as analyzer_main
from repro.statcheck.fixtures import main as fixtures_main
from repro.statcheck.fixtures import write_fixture_session
from repro.statcheck.selflint import main as selflint_main


@pytest.fixture
def clean_session(tmp_path):
    return write_fixture_session(tmp_path / "clean")


@pytest.fixture
def orphan_session(tmp_path):
    return write_fixture_session(tmp_path / "orphan", "orphan")


class TestViprofLint:
    def test_clean_exits_zero(self, clean_session, capsys):
        rc = viprof_main(["lint", str(clean_session)])
        assert rc == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_corrupt_exits_nonzero_with_rule_id(self, orphan_session, capsys):
        rc = viprof_main(["lint", str(orphan_session)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "VP103" in out and "resolves in no code map" in out

    def test_json_output(self, orphan_session, capsys):
        rc = viprof_main(["lint", "--json", str(orphan_session)])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["error"] == 1
        assert data["findings"][0]["rule_id"] == "VP103"

    def test_rule_selection(self, orphan_session, capsys):
        rc = viprof_main(
            ["lint", "--rules", "VP101,VP102", str(orphan_session)]
        )
        assert rc == 0  # the orphan rule was not selected

    def test_empty_rules_is_usage_error(self, orphan_session, capsys):
        # "--rules ''" must not silently run zero rules and pass.
        rc = viprof_main(["lint", "--rules", "", str(orphan_session)])
        assert rc == 2
        assert "no rule ids" in capsys.readouterr().err

    def test_fail_on_warning(self, tmp_path, capsys):
        sess = write_fixture_session(tmp_path / "gap", "epoch-gap")
        assert viprof_main(["lint", str(sess)]) == 0  # warnings only
        assert viprof_main(
            ["lint", "--fail-on", "warning", str(sess)]
        ) == 1

    def test_list_rules(self, capsys):
        rc = viprof_main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for rid in ("VP101", "VP102", "VP103", "VP104", "VP105", "VP106"):
            assert rid in out

    def test_bad_session_dir_exits_two(self, tmp_path, capsys):
        rc = viprof_main(["lint", str(tmp_path / "ghost")])
        assert rc == 2
        assert "viprof lint:" in capsys.readouterr().err

    def test_missing_session_dir_exits_two(self, capsys):
        assert viprof_main(["lint"]) == 2


class TestModuleFrontEnds:
    def test_analyzer_main(self, clean_session):
        assert analyzer_main([str(clean_session)]) == 0

    def test_selflint_main_on_clean_snippet(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x: int = 1\n")
        assert selflint_main([str(tmp_path)]) == 0

    def test_selflint_main_json(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "def f() -> None:\n    raise OSError('x')\n"
        )
        assert selflint_main(["--json", str(tmp_path)]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["findings"][0]["rule_id"] == "SL202"

    def test_selflint_main_bad_root(self, tmp_path, capsys):
        assert selflint_main([str(tmp_path / "ghost")]) == 2

    def test_fixtures_main_generates(self, tmp_path, capsys):
        assert fixtures_main([str(tmp_path / "fx")]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "stale-moved" in out

    def test_fixtures_selftest(self, capsys):
        assert fixtures_main(["--selftest"]) == 0
        assert "selftest ok" in capsys.readouterr().out
