"""Regression: a failed OS write mid-spill must not leave a torn record.

``RecordFileWriter`` with ``buffer_bytes > 0`` used to be able to leave a
partial record on disk when an exception escaped between a watermark
spill and ``flush()`` — the OS write could land a prefix of the pending
buffer cut inside a record, and nothing repaired it.  Spills are now
record-aligned and crash-safe: the writer holds a raw handle and, when an
OS write fails partway, truncates the file back to the last whole-record
boundary before re-raising.
"""

import pytest

from repro.profiling.model import RawSample
from repro.profiling.record_codec import (
    CORE_CODEC,
    RecordFileWriter,
    open_sample_record_file,
    probe_sample_file,
)

_EVENT = "GLOBAL_POWER_EVENTS"


def _sample(i: int) -> RawSample:
    return RawSample(
        pc=0x6080_0000 + i * 8, event_name=_EVENT, task_id=42,
        kernel_mode=False, cycle=1_000 + i, epoch=i % 3,
    )


class _FlakyFile:
    """Wraps the writer's raw handle: the next write lands ``partial``
    bytes and then dies with OSError, like a disk-full or a kill during
    a large write."""

    def __init__(self, fh, partial: int) -> None:
        self._fh = fh
        self._partial = partial
        self._tripped = False

    def write(self, data) -> int:
        if self._tripped:
            return self._fh.write(data)
        self._tripped = True
        self._fh.write(bytes(data)[: self._partial])
        raise OSError(28, "No space left on device")

    def __getattr__(self, name):
        return getattr(self._fh, name)


def _arm_flaky(writer: RecordFileWriter, partial: int) -> None:
    writer._fh = _FlakyFile(writer._fh, partial)


class TestFailedSpill:
    @pytest.mark.parametrize("partial", [1, 13, 29, 30, 57, 100])
    def test_failed_spill_is_record_aligned(self, tmp_path, partial):
        path = tmp_path / "t.samples"
        writer = RecordFileWriter(
            path, CORE_CODEC, _EVENT, 1000, buffer_bytes=1 << 20
        )
        for i in range(10):
            writer.write(_sample(i))
        _arm_flaky(writer, partial)
        with pytest.raises(OSError):
            writer.flush()

        probe = probe_sample_file(path)
        assert not probe.torn, (
            f"partial write of {partial} bytes left "
            f"{probe.trailing_bytes} trailing bytes on disk"
        )
        # The surviving prefix parses cleanly and is the stream's head.
        with open_sample_record_file(path) as reader:
            records = [r.sample for r in reader]
        assert records == [_sample(i) for i in range(len(records))]
        assert len(records) == partial // CORE_CODEC.record_size

    def test_watermark_spill_failure_mid_run(self, tmp_path):
        # The original bug shape: the exception escapes from a watermark
        # spill inside write(), not from an explicit flush.
        path = tmp_path / "t.samples"
        writer = RecordFileWriter(
            path, CORE_CODEC, _EVENT, 1000,
            buffer_bytes=4 * CORE_CODEC.record_size,
        )
        for i in range(3):
            writer.write(_sample(i))
        _arm_flaky(writer, partial=CORE_CODEC.record_size + 7)
        with pytest.raises(OSError):
            writer.write(_sample(3))  # crosses the watermark

        probe = probe_sample_file(path)
        assert not probe.torn
        assert probe.n_records == 1

    def test_close_after_failure_keeps_file_clean(self, tmp_path):
        path = tmp_path / "t.samples"
        writer = RecordFileWriter(
            path, CORE_CODEC, _EVENT, 1000, buffer_bytes=1 << 20
        )
        for i in range(5):
            writer.write(_sample(i))
        _arm_flaky(writer, partial=10)
        with pytest.raises(OSError):
            writer.flush()
        writer.close()
        assert not probe_sample_file(path).torn

    def test_unbuffered_writer_also_protected(self, tmp_path):
        # buffer_bytes=0 spills after every append; a failure there must
        # be just as aligned.
        path = tmp_path / "t.samples"
        writer = RecordFileWriter(
            path, CORE_CODEC, _EVENT, 1000, buffer_bytes=0
        )
        writer.write(_sample(0))
        _arm_flaky(writer, partial=11)
        with pytest.raises(OSError):
            writer.write(_sample(1))
        probe = probe_sample_file(path)
        assert not probe.torn
        assert probe.n_records == 1


class TestAbandon:
    def test_abandoned_writer_drops_buffered_records(self, tmp_path):
        path = tmp_path / "t.samples"
        writer = RecordFileWriter(
            path, CORE_CODEC, _EVENT, 1000, buffer_bytes=1 << 20
        )
        for i in range(4):
            writer.write(_sample(i))
        writer.abandon()
        writer.close()  # must not resurrect the buffered records
        probe = probe_sample_file(path)
        assert probe.n_records == 0
        assert not probe.torn
