"""Unit tests for the packed sample-file format."""

import pytest

from repro.errors import SampleFormatError
from repro.profiling.model import RawSample
from repro.profiling.samplefile import (
    MAGIC,
    SampleFileReader,
    SampleFileWriter,
)


def sample(pc=0x1000, epoch=-1, cycle=5, kernel=False):
    return RawSample(
        pc=pc, event_name="GLOBAL_POWER_EVENTS", task_id=1000,
        kernel_mode=kernel, cycle=cycle, epoch=epoch,
    )


class TestRoundTrip:
    def test_empty_file(self, tmp_path):
        p = tmp_path / "e.samples"
        with SampleFileWriter(p, "GLOBAL_POWER_EVENTS", 90_000):
            pass
        r = SampleFileReader(p)
        assert len(r) == 0
        assert r.event_name == "GLOBAL_POWER_EVENTS"
        assert r.period == 90_000

    def test_samples_roundtrip(self, tmp_path):
        p = tmp_path / "s.samples"
        originals = [
            sample(pc=0x6080_1234, epoch=7, cycle=99),
            sample(pc=0xC010_0000, epoch=-1, cycle=100, kernel=True),
            sample(pc=0x0804_8000, epoch=0, cycle=101),
        ]
        with SampleFileWriter(p, "GLOBAL_POWER_EVENTS", 90_000) as w:
            for s in originals:
                w.write(s)
        back = list(SampleFileReader(p))
        assert back == originals

    def test_write_many(self, tmp_path):
        p = tmp_path / "s.samples"
        with SampleFileWriter(p, "BSQ_CACHE_REFERENCE", 1000) as w:
            n = w.write_many(iter([sample(), sample()]))
        assert n == 2
        assert len(SampleFileReader(p)) == 2

    def test_write_many_accepts_any_iterable(self, tmp_path):
        originals = [sample(pc=0x1000 + i) for i in range(8)]
        a, b = tmp_path / "list.samples", tmp_path / "gen.samples"
        with SampleFileWriter(a, "GLOBAL_POWER_EVENTS", 1000) as w:
            assert w.write_many(originals) == len(originals)
        with SampleFileWriter(b, "GLOBAL_POWER_EVENTS", 1000) as w:
            assert w.write_many(s for s in originals) == len(originals)
        assert a.read_bytes() == b.read_bytes()
        assert list(SampleFileReader(a)) == originals

    def test_context_exit_flushes_buffered_records(self, tmp_path):
        p = tmp_path / "buffered.samples"
        with SampleFileWriter(p, "GLOBAL_POWER_EVENTS", 1000) as w:
            w.write(sample())
            header_and_nothing = p.stat().st_size
        # The record was buffered (file held only the header inside the
        # block) and the context exit flushed it.
        assert p.stat().st_size > header_and_nothing
        assert len(SampleFileReader(p)) == 1

    def test_large_pc_values(self, tmp_path):
        p = tmp_path / "s.samples"
        with SampleFileWriter(p, "GLOBAL_POWER_EVENTS", 90_000) as w:
            w.write(sample(pc=0xFFFF_FFFF_FFFF))
        assert next(iter(SampleFileReader(p))).pc == 0xFFFF_FFFF_FFFF


class TestValidation:
    def test_bad_period_rejected(self, tmp_path):
        with pytest.raises(SampleFormatError):
            SampleFileWriter(tmp_path / "x", "E", 0)

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad"
        p.write_bytes(b"XXXX" + b"\x00" * 32)
        with pytest.raises(SampleFormatError, match="bad magic"):
            SampleFileReader(p)

    def test_truncated_header(self, tmp_path):
        p = tmp_path / "short"
        p.write_bytes(MAGIC[:2])
        with pytest.raises(SampleFormatError, match="truncated"):
            SampleFileReader(p)

    def test_torn_record(self, tmp_path):
        p = tmp_path / "torn.samples"
        with SampleFileWriter(p, "GLOBAL_POWER_EVENTS", 90_000) as w:
            w.write(sample())
        data = p.read_bytes()
        p.write_bytes(data[:-3])  # chop mid-record
        with pytest.raises(SampleFormatError, match="torn record"):
            SampleFileReader(p)

    def test_wrong_version(self, tmp_path):
        p = tmp_path / "v.samples"
        with SampleFileWriter(p, "E1", 1000) as w:
            w.write(sample())
        data = bytearray(p.read_bytes())
        data[4] = 99  # version byte (little endian H at offset 4)
        p.write_bytes(bytes(data))
        with pytest.raises(SampleFormatError, match="version"):
            SampleFileReader(p)
