"""Property-based round-trip tests for the sample-file format."""

from hypothesis import given, settings, strategies as st

from repro.profiling.model import RawSample
from repro.profiling.samplefile import SampleFileReader, SampleFileWriter

SAMPLES = st.lists(
    st.builds(
        RawSample,
        pc=st.integers(min_value=0, max_value=(1 << 64) - 1),
        event_name=st.just("GLOBAL_POWER_EVENTS"),
        task_id=st.integers(min_value=0, max_value=(1 << 32) - 1),
        kernel_mode=st.booleans(),
        cycle=st.integers(min_value=0, max_value=(1 << 63) - 1),
        epoch=st.integers(min_value=-1, max_value=(1 << 31) - 1),
    ),
    max_size=50,
)


@given(samples=SAMPLES, period=st.integers(min_value=1, max_value=10**9))
@settings(max_examples=50, deadline=None)
def test_roundtrip_preserves_everything(tmp_path_factory, samples, period):
    p = tmp_path_factory.mktemp("sf") / "t.samples"
    with SampleFileWriter(p, "GLOBAL_POWER_EVENTS", period) as w:
        for s in samples:
            w.write(s)
    r = SampleFileReader(p)
    assert r.period == period
    assert list(r) == samples
    assert len(r) == len(samples)


@given(
    name=st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_event_name_roundtrip(tmp_path_factory, name):
    p = tmp_path_factory.mktemp("sf") / "t.samples"
    with SampleFileWriter(p, name, 1000):
        pass
    assert SampleFileReader(p).event_name == name
