"""Unit tests for within-symbol annotation."""

import pytest

from repro.errors import ConfigError
from repro.profiling.annotate import annotate_symbol
from repro.profiling.model import RawSample, ResolvedSample


def sample(offset, event="GLOBAL_POWER_EVENTS", image="a.so", symbol="f"):
    raw = RawSample(
        pc=0x1000 + max(0, offset), event_name=event, task_id=1,
        kernel_mode=False, cycle=0,
    )
    return ResolvedSample(raw=raw, image=image, symbol=symbol, offset=offset)


class TestAnnotateSymbol:
    def test_bucketing(self):
        samples = [sample(0), sample(5), sample(16), sample(40)]
        ann = annotate_symbol(samples, "a.so", "f", bucket_bytes=16)
        offsets = [r.offset for r in ann.rows]
        assert offsets == [0, 16, 32]
        assert ann.rows[0].count("GLOBAL_POWER_EVENTS") == 2

    def test_non_matching_samples_skipped(self):
        samples = [sample(0), sample(0, symbol="g"), sample(0, image="b.so")]
        ann = annotate_symbol(samples, "a.so", "f")
        assert ann.totals["GLOBAL_POWER_EVENTS"] == 1

    def test_unknown_offsets_counted_separately(self):
        samples = [sample(-1), sample(8)]
        ann = annotate_symbol(samples, "a.so", "f")
        assert ann.unknown_offset_samples == 1
        assert len(ann.rows) == 1

    def test_multi_event_columns(self):
        samples = [sample(0), sample(0, event="BSQ_CACHE_REFERENCE")]
        ann = annotate_symbol(samples, "a.so", "f")
        assert ann.rows[0].count("BSQ_CACHE_REFERENCE") == 1

    def test_bytecode_conversion(self):
        samples = [sample(80)]
        ann = annotate_symbol(samples, "a.so", "f", bucket_bytes=16, expansion=8)
        assert ann.rows[0].bytecode_index == 80 // 8

    def test_no_expansion_no_bytecode(self):
        ann = annotate_symbol([sample(80)], "a.so", "f")
        assert ann.rows[0].bytecode_index is None

    def test_hottest(self):
        samples = [sample(0)] + [sample(32)] * 3
        ann = annotate_symbol(samples, "a.so", "f", bucket_bytes=16)
        assert ann.hottest("GLOBAL_POWER_EVENTS").offset == 32
        assert ann.hottest("BSQ_CACHE_REFERENCE") is None

    def test_bucket_validation(self):
        with pytest.raises(ConfigError):
            annotate_symbol([], "a.so", "f", bucket_bytes=0)

    def test_format_table(self):
        ann = annotate_symbol([sample(0)], "a.so", "f", expansion=8)
        txt = ann.format_table()
        assert "a.so:f" in txt and "~bc 0" in txt


class TestEndToEndAnnotation:
    def test_opreport_annotate_kernel_symbol(self, tmp_path):
        from repro import oprofile_profile
        from tests.conftest import make_tiny_workload

        run = oprofile_profile(
            make_tiny_workload(base_time_s=0.4), period=10_000,
            session_dir=tmp_path,
        )
        from repro.oprofile.opreport import OpReport

        rep = OpReport(run.kernel, run.sample_dir)
        ann = rep.annotate("libc-2.3.2.so", "memset", bucket_bytes=32)
        assert ann.totals.get("GLOBAL_POWER_EVENTS", 0) >= 0
        assert ann.unknown_offset_samples == 0

    def test_viprof_annotate_jit_method(self, tmp_path):
        from repro import viprof_profile
        from tests.conftest import make_tiny_workload

        run = viprof_profile(
            make_tiny_workload(base_time_s=0.5), period=8_000,
            session_dir=tmp_path,
        )
        vr = run.viprof_report()
        # Pick the hottest JIT method from the report.
        jit = next(
            r for r in vr.report.sorted_rows() if r.image == "JIT.App"
        )
        ann = vr.post.annotate_jit(jit.symbol, bucket_bytes=32)
        assert ann.rows, "hot JIT method produced no annotated buckets"
        assert all(
            r.bytecode_index is not None for r in ann.rows
        ), "tier expansion should give bytecode indices"
        # Offsets must lie inside the method body.
        assert all(r.offset >= 0 for r in ann.rows)
