"""Fuzz the record codec against torn and corrupted files.

The robustness contract (both magics, ``VPRS`` and ``XPRS``): feeding the
reader a randomly truncated or bit-flipped sample file must end in one of
exactly three outcomes —

* a clean parse;
* a :class:`~repro.errors.SampleFormatError` naming the file (and, for
  structural damage, the byte offset of the failure);
* a salvage: :func:`probe_sample_file` measures the tear and truncating
  at ``probe.truncate_to`` yields a clean record-aligned prefix of the
  original stream.

What must *never* happen is a silent misparse — a parse that succeeds but
disagrees with the original stream anywhere the damage didn't touch.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import SampleFormatError
from repro.profiling.model import RawSample
from repro.profiling.record_codec import (
    CORE_CODEC,
    DOMAIN_CODEC,
    RecordFileWriter,
    open_sample_record_file,
    probe_sample_file,
)

_EVENT = "GLOBAL_POWER_EVENTS"
_PERIOD = 90_000

SAMPLES = st.lists(
    st.builds(
        RawSample,
        pc=st.integers(min_value=0, max_value=(1 << 64) - 1),
        event_name=st.just(_EVENT),
        task_id=st.integers(min_value=0, max_value=(1 << 32) - 1),
        kernel_mode=st.booleans(),
        cycle=st.integers(min_value=0, max_value=(1 << 63) - 1),
        epoch=st.integers(min_value=-1, max_value=(1 << 31) - 1),
    ),
    max_size=30,
)

CODECS = st.sampled_from([CORE_CODEC, DOMAIN_CODEC])


def _write_file(path, codec, samples):
    with RecordFileWriter(path, codec, _EVENT, _PERIOD) as w:
        for i, s in enumerate(samples):
            w.write(s, domain_id=i % 4 if codec.has_domain else None)


def _read_all(path):
    with open_sample_record_file(path) as r:
        return [(rec.sample, rec.domain_id) for rec in r]


@given(samples=SAMPLES, codec=CODECS, data=st.data())
@settings(max_examples=120, deadline=None)
def test_truncation_parses_fails_loudly_or_salvages(
    tmp_path_factory, samples, codec, data
):
    path = tmp_path_factory.mktemp("fuzz") / "t.samples"
    _write_file(path, codec, samples)
    original = _read_all(path)
    blob = path.read_bytes()

    cut = data.draw(
        st.integers(min_value=0, max_value=len(blob)), label="cut"
    )
    path.write_bytes(blob[:cut])

    try:
        probe = probe_sample_file(path)
    except SampleFormatError as e:
        # Header damage: unsalvageable, and the error says where.
        assert str(path) in str(e)
        assert "offset" in str(e)
        return

    # Body damage (or no damage): salvage at the record boundary must
    # yield a clean parse of an exact prefix of the original stream.
    assert probe.truncate_to <= cut + probe.trailing_bytes
    with open(path, "r+b") as fh:
        fh.truncate(probe.truncate_to)
    salvaged = _read_all(path)
    assert salvaged == original[: probe.n_records]


@given(samples=SAMPLES, codec=CODECS, data=st.data())
@settings(max_examples=120, deadline=None)
def test_bit_flip_never_misparses_silently(
    tmp_path_factory, samples, codec, data
):
    path = tmp_path_factory.mktemp("fuzz") / "t.samples"
    _write_file(path, codec, samples)
    original = _read_all(path)
    blob = bytearray(path.read_bytes())

    pos = data.draw(
        st.integers(min_value=0, max_value=len(blob) - 1), label="pos"
    )
    bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
    blob[pos] ^= 1 << bit
    path.write_bytes(bytes(blob))

    data_start = len(blob) - len(samples) * codec.record_size
    try:
        flipped = _read_all(path)
    except SampleFormatError as e:
        # Loud failure is always acceptable; it must name the file.
        assert str(path) in str(e)
        return

    # The parse succeeded: it must agree with the original everywhere
    # the flipped byte can't reach.  A flip inside record i may change
    # record i's decoded fields (the format carries no checksum); any
    # other divergence is a silent misparse.
    assert len(flipped) == len(original)
    if pos >= data_start:
        hit = (pos - data_start) // codec.record_size
        for i, (got, want) in enumerate(zip(flipped, original)):
            if i != hit:
                assert got == want, f"record {i} changed by a flip in {hit}"
    else:
        # Header flip that still parses (event name or period byte):
        # the record stream itself must be untouched.  The event name
        # is header data replicated into every decoded sample, so it is
        # legitimately renamed by a flip in the name bytes — compare
        # the struct-packed fields only.
        def fields(records):
            return [
                (s.pc, s.task_id, s.kernel_mode, s.cycle, s.epoch, d)
                for s, d in records
            ]

        assert fields(flipped) == fields(original)


@given(samples=SAMPLES, codec=CODECS)
@settings(max_examples=60, deadline=None)
def test_probe_agrees_with_reader_on_clean_files(
    tmp_path_factory, samples, codec
):
    path = tmp_path_factory.mktemp("fuzz") / "t.samples"
    _write_file(path, codec, samples)
    probe = probe_sample_file(path)
    assert not probe.torn
    assert probe.n_records == len(samples)
    assert probe.magic == codec.magic
    assert probe.record_size == codec.record_size
    assert probe.event_name == _EVENT
    assert probe.period == _PERIOD
    assert probe.truncate_to == path.stat().st_size
