"""Tests for XML/CSV report export."""

import csv
import io
from xml.etree import ElementTree as ET

from repro.profiling.export import report_to_csv, report_to_xml
from repro.profiling.model import RawSample, ResolvedSample
from repro.profiling.report import build_report


def resolved(image, symbol, event="GLOBAL_POWER_EVENTS"):
    raw = RawSample(
        pc=0x1000, event_name=event, task_id=1, kernel_mode=False, cycle=0
    )
    return ResolvedSample(raw=raw, image=image, symbol=symbol)


def sample_report():
    samples = (
        [resolved("JIT.App", "app.Main.hot")] * 3
        + [resolved("libc-2.3.2.so", "memset")]
        + [resolved("JIT.App", "app.Main.hot", event="BSQ_CACHE_REFERENCE")]
    )
    return build_report(
        samples, events=("GLOBAL_POWER_EVENTS", "BSQ_CACHE_REFERENCE")
    )


class TestXmlExport:
    def test_well_formed_and_complete(self):
        xml = report_to_xml(sample_report())
        root = ET.fromstring(xml)
        assert root.tag == "profile"
        events = {e.get("name"): e.get("total") for e in root.find("events")}
        assert events["GLOBAL_POWER_EVENTS"] == "4"
        symbols = root.find("symbols").findall("symbol")
        assert {s.get("name") for s in symbols} == {"app.Main.hot", "memset"}

    def test_counts_and_percents(self):
        root = ET.fromstring(report_to_xml(sample_report()))
        hot = next(
            s for s in root.find("symbols") if s.get("name") == "app.Main.hot"
        )
        counts = {c.get("event"): c for c in hot}
        assert counts["GLOBAL_POWER_EVENTS"].get("samples") == "3"
        assert counts["GLOBAL_POWER_EVENTS"].get("percent") == "75.0000"
        assert counts["BSQ_CACHE_REFERENCE"].get("samples") == "1"

    def test_zero_counts_omitted(self):
        root = ET.fromstring(report_to_xml(sample_report()))
        memset = next(
            s for s in root.find("symbols") if s.get("name") == "memset"
        )
        assert len(memset) == 1  # only the time event

    def test_special_characters_escaped(self):
        rep = build_report([resolved("a<b>.so", 'f"&g')])
        root = ET.fromstring(report_to_xml(rep))  # must not raise
        sym = root.find("symbols").find("symbol")
        assert sym.get("image") == "a<b>.so"
        assert sym.get("name") == 'f"&g'


class TestCsvExport:
    def test_header_and_rows(self):
        text = report_to_csv(sample_report())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][:2] == ["image", "symbol"]
        assert "GLOBAL_POWER_EVENTS_samples" in rows[0]
        assert rows[1][:2] == ["JIT.App", "app.Main.hot"]
        assert rows[1][2] == "3"

    def test_sorted_by_primary_event(self):
        text = report_to_csv(sample_report())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[1][1] == "app.Main.hot"
        assert rows[2][1] == "memset"

    def test_empty_report(self):
        rep = build_report([], events=("GLOBAL_POWER_EVENTS",))
        rows = list(csv.reader(io.StringIO(report_to_csv(rep))))
        assert len(rows) == 1
