"""Unit tests for profile aggregation and the opreport-style table."""

from repro.profiling.model import RawSample, ResolvedSample
from repro.profiling.report import build_report


def resolved(image, symbol, event="GLOBAL_POWER_EVENTS", pc=0x1000):
    raw = RawSample(
        pc=pc, event_name=event, task_id=1, kernel_mode=False, cycle=0
    )
    return ResolvedSample(raw=raw, image=image, symbol=symbol)


class TestBuildReport:
    def test_counts_aggregate_per_symbol(self):
        samples = [
            resolved("a.so", "f"),
            resolved("a.so", "f"),
            resolved("a.so", "g"),
        ]
        rep = build_report(samples)
        assert rep.row_for("a.so", "f").count("GLOBAL_POWER_EVENTS") == 2
        assert rep.row_for("a.so", "g").count("GLOBAL_POWER_EVENTS") == 1
        assert rep.totals["GLOBAL_POWER_EVENTS"] == 3

    def test_multi_event_columns(self):
        samples = [
            resolved("a.so", "f", event="GLOBAL_POWER_EVENTS"),
            resolved("a.so", "f", event="BSQ_CACHE_REFERENCE"),
            resolved("a.so", "f", event="BSQ_CACHE_REFERENCE"),
        ]
        rep = build_report(
            samples, events=("GLOBAL_POWER_EVENTS", "BSQ_CACHE_REFERENCE")
        )
        row = rep.row_for("a.so", "f")
        assert row.count("GLOBAL_POWER_EVENTS") == 1
        assert row.count("BSQ_CACHE_REFERENCE") == 2

    def test_unlisted_event_ignored(self):
        samples = [resolved("a.so", "f", event="OTHER_EVENT")]
        rep = build_report(samples, events=("GLOBAL_POWER_EVENTS",))
        assert rep.row_for("a.so", "f") is None

    def test_percent(self):
        samples = [resolved("a", "f")] * 3 + [resolved("b", "g")]
        rep = build_report(samples)
        assert rep.percent(rep.row_for("a", "f"), "GLOBAL_POWER_EVENTS") == 75.0

    def test_sorted_rows_by_primary_event(self):
        samples = [resolved("a", "f")] + [resolved("b", "g")] * 3
        rep = build_report(samples)
        rows = rep.sorted_rows()
        assert (rows[0].image, rows[0].symbol) == ("b", "g")

    def test_image_share(self):
        samples = [resolved("a", "f"), resolved("a", "g"), resolved("b", "h")]
        rep = build_report(samples)
        assert abs(rep.image_share("a") - 2 / 3) < 1e-9

    def test_empty_report(self):
        rep = build_report([], events=("GLOBAL_POWER_EVENTS",))
        assert rep.sorted_rows() == []
        assert rep.image_share("x") == 0.0


class TestImageSummary:
    def test_image_totals_aggregate_symbols(self):
        samples = [
            resolved("a.so", "f"),
            resolved("a.so", "g"),
            resolved("b.so", "h"),
        ]
        rep = build_report(samples)
        totals = dict(rep.image_totals())
        assert totals["a.so"]["GLOBAL_POWER_EVENTS"] == 2
        assert totals["b.so"]["GLOBAL_POWER_EVENTS"] == 1

    def test_image_totals_sorted(self):
        samples = [resolved("cold.so", "f")] + [resolved("hot.so", "g")] * 3
        rep = build_report(samples)
        assert rep.image_totals()[0][0] == "hot.so"

    def test_format_image_summary(self):
        rep = build_report([resolved("a.so", "f")] * 4)
        txt = rep.format_image_summary()
        assert "a.so" in txt and "100.0000" in txt

    def test_limit(self):
        samples = [resolved(f"img{i}.so", "f") for i in range(10)]
        rep = build_report(samples)
        assert len(rep.format_image_summary(limit=3).splitlines()) == 4


class TestFormatTable:
    def test_header_labels(self):
        samples = [
            resolved("a", "f", event="GLOBAL_POWER_EVENTS"),
            resolved("a", "f", event="BSQ_CACHE_REFERENCE"),
        ]
        rep = build_report(
            samples, events=("GLOBAL_POWER_EVENTS", "BSQ_CACHE_REFERENCE")
        )
        table = rep.format_table()
        head = table.splitlines()[0]
        assert "Time %" in head
        assert "Dmiss %" in head
        assert "Image name" in head

    def test_limit(self):
        samples = [resolved("a", f"f{i}") for i in range(20)]
        rep = build_report(samples)
        assert len(rep.format_table(limit=5).splitlines()) == 6

    def test_custom_labels(self):
        rep = build_report([resolved("a", "f", event="INSTR_RETIRED")])
        table = rep.format_table(column_labels={"INSTR_RETIRED": "Instr %"})
        assert "Instr %" in table

    def test_rows_contain_percentages(self):
        rep = build_report([resolved("a", "f")] * 2)
        assert "100.0000" in rep.format_table()
