"""Byte-parity properties of the batched write path.

The batching rework is only legal because it is invisible in the output:
``pack_many``/``write_batch``/``write_packed`` must produce exactly the
bytes a per-record ``pack``/``write`` loop produces, for both registered
codecs, any domain-id column, and any epoch tags.  These tests pin that
contract; the engine-level counterpart is
``tests/system/test_golden_session.py``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SampleFormatError
from repro.profiling.model import RawSample
from repro.profiling.record_codec import (
    CORE_CODEC,
    DOMAIN_CODEC,
    RecordFileReader,
    RecordFileWriter,
)
from repro.xen.samplefile import XenoSampleFileWriter
from repro.xen.xenoprof import XenoSample

EVENT = "GLOBAL_POWER_EVENTS"

SAMPLES = st.lists(
    st.builds(
        RawSample,
        pc=st.integers(min_value=0, max_value=(1 << 64) - 1),
        event_name=st.just(EVENT),
        task_id=st.integers(min_value=0, max_value=(1 << 32) - 1),
        kernel_mode=st.booleans(),
        cycle=st.integers(min_value=0, max_value=(1 << 63) - 1),
        epoch=st.integers(min_value=-1, max_value=(1 << 31) - 1),
    ),
    max_size=60,
)

BUFFER_SIZES = st.sampled_from([0, 1, 17, 4096, None])


def sample(pc=0x1000, task=1, kernel_mode=False, cycle=0, epoch=-1):
    return RawSample(
        pc=pc, event_name=EVENT, task_id=task,
        kernel_mode=kernel_mode, cycle=cycle, epoch=epoch,
    )


class TestPackMany:
    @given(samples=SAMPLES)
    @settings(max_examples=60, deadline=None)
    def test_core_matches_joined_pack(self, samples):
        expected = b"".join(CORE_CODEC.pack(s) for s in samples)
        assert CORE_CODEC.pack_many(samples) == expected

    @given(
        samples=SAMPLES,
        domain_seed=st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_domain_matches_joined_pack(self, samples, domain_seed):
        domains = [(domain_seed + i) % (1 << 16) for i in range(len(samples))]
        expected = b"".join(
            DOMAIN_CODEC.pack(s, domain_id=d)
            for s, d in zip(samples, domains)
        )
        assert DOMAIN_CODEC.pack_many(samples, domains) == expected

    def test_accepts_generator(self):
        samples = [sample(pc=i) for i in range(5)]
        assert CORE_CODEC.pack_many(iter(samples)) == CORE_CODEC.pack_many(
            samples
        )

    def test_domain_required(self):
        with pytest.raises(SampleFormatError, match="domain id"):
            DOMAIN_CODEC.pack_many([sample()])

    def test_domain_count_mismatch_rejected(self):
        with pytest.raises(SampleFormatError, match="domain ids"):
            DOMAIN_CODEC.pack_many([sample(), sample()], [1])


class TestWriteBatchParity:
    @given(samples=SAMPLES, buffer_bytes=BUFFER_SIZES)
    @settings(max_examples=40, deadline=None)
    def test_core_batch_matches_per_record(
        self, tmp_path_factory, samples, buffer_bytes
    ):
        tmp = tmp_path_factory.mktemp("bw")
        seq, bat = tmp / "seq.samples", tmp / "bat.samples"
        with RecordFileWriter(seq, CORE_CODEC, EVENT, 1000) as w:
            for s in samples:
                w.write(s)
        with RecordFileWriter(
            bat, CORE_CODEC, EVENT, 1000, buffer_bytes=buffer_bytes
        ) as w:
            assert w.write_batch(samples) == len(samples)
        assert seq.read_bytes() == bat.read_bytes()

    @given(samples=SAMPLES, buffer_bytes=BUFFER_SIZES)
    @settings(max_examples=40, deadline=None)
    def test_domain_batch_matches_per_record(
        self, tmp_path_factory, samples, buffer_bytes
    ):
        domains = [i % 7 for i in range(len(samples))]
        tmp = tmp_path_factory.mktemp("bw")
        seq, bat = tmp / "seq.samples", tmp / "bat.samples"
        with RecordFileWriter(seq, DOMAIN_CODEC, EVENT, 1000) as w:
            for s, d in zip(samples, domains):
                w.write(s, domain_id=d)
        with RecordFileWriter(
            bat, DOMAIN_CODEC, EVENT, 1000, buffer_bytes=buffer_bytes
        ) as w:
            w.write_batch(samples, domains)
        assert seq.read_bytes() == bat.read_bytes()

    @given(samples=SAMPLES)
    @settings(max_examples=30, deadline=None)
    def test_mixed_write_and_batch_roundtrips(self, tmp_path_factory, samples):
        """Interleaving per-record and batched appends preserves order."""
        p = tmp_path_factory.mktemp("bw") / "mix.samples"
        half = len(samples) // 2
        with RecordFileWriter(p, CORE_CODEC, EVENT, 1000) as w:
            for s in samples[:half]:
                w.write(s)
            w.write_batch(samples[half:])
            assert w.samples_written == len(samples)
        with RecordFileReader(p) as r:
            assert [rec.sample for rec in r] == samples

    def test_xeno_writer_batch_parity(self, tmp_path):
        xs = [
            XenoSample(raw=sample(pc=0x2000 + i, epoch=i), domain_id=i % 3)
            for i in range(25)
        ]
        seq, bat = tmp_path / "seq.samples", tmp_path / "bat.samples"
        with XenoSampleFileWriter(seq, EVENT, 1000) as w:
            for s in xs:
                w.write(s)
        with XenoSampleFileWriter(bat, EVENT, 1000) as w:
            assert w.write_batch(iter(xs)) == len(xs)
        assert seq.read_bytes() == bat.read_bytes()


class TestWritePacked:
    def test_blob_reuse_matches_repeated_batches(self, tmp_path):
        samples = [sample(pc=0x4000 + i, cycle=i) for i in range(10)]
        blob = CORE_CODEC.pack_many(samples)
        a, b = tmp_path / "a.samples", tmp_path / "b.samples"
        with RecordFileWriter(a, CORE_CODEC, EVENT, 1000) as w:
            for _ in range(3):
                w.write_batch(samples)
        with RecordFileWriter(b, CORE_CODEC, EVENT, 1000) as w:
            for _ in range(3):
                assert w.write_packed(blob, len(samples)) == len(samples)
            assert w.samples_written == 30
        assert a.read_bytes() == b.read_bytes()

    def test_length_mismatch_rejected(self, tmp_path):
        blob = CORE_CODEC.pack_many([sample()])
        with RecordFileWriter(
            tmp_path / "x.samples", CORE_CODEC, EVENT, 1000
        ) as w:
            with pytest.raises(SampleFormatError, match="packed batch"):
                w.write_packed(blob, 2)


class TestBuffering:
    def test_pending_records_invisible_until_flush(self, tmp_path):
        p = tmp_path / "buf.samples"
        w = RecordFileWriter(p, CORE_CODEC, EVENT, 1000)
        w._fh.flush()  # settle the header so sizes below are exact
        header_size = p.stat().st_size
        w.write(sample())
        w._fh.flush()
        assert p.stat().st_size == header_size  # record still pending
        w.flush()
        assert p.stat().st_size == header_size + CORE_CODEC.record_size
        w.close()

    def test_context_exit_flushes(self, tmp_path):
        p = tmp_path / "exit.samples"
        samples = [sample(pc=i + 1) for i in range(9)]
        with RecordFileWriter(p, CORE_CODEC, EVENT, 1000) as w:
            w.write_batch(samples)
        with RecordFileReader(p) as r:
            assert len(r) == len(samples)
            assert [rec.sample for rec in r] == samples

    def test_zero_buffer_spills_every_record(self, tmp_path):
        p = tmp_path / "zero.samples"
        w = RecordFileWriter(p, CORE_CODEC, EVENT, 1000, buffer_bytes=0)
        w._fh.flush()  # settle the header so sizes below are exact
        header_size = p.stat().st_size
        w.write(sample())
        w._fh.flush()  # only the OS-level buffer may lag
        assert p.stat().st_size == header_size + CORE_CODEC.record_size
        w.close()
