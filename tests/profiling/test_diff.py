"""Unit tests for profile differencing."""

import pytest

from repro.errors import ConfigError
from repro.profiling.diff import diff_reports
from repro.profiling.model import RawSample, ResolvedSample
from repro.profiling.report import build_report


def resolved(symbol, image="JIT.App", event="GLOBAL_POWER_EVENTS"):
    raw = RawSample(
        pc=0x1000, event_name=event, task_id=1, kernel_mode=False, cycle=0
    )
    return ResolvedSample(raw=raw, image=image, symbol=symbol)


def report(spec: dict[str, int]):
    samples = []
    for symbol, n in spec.items():
        samples.extend([resolved(symbol)] * n)
    return build_report(samples, events=("GLOBAL_POWER_EVENTS",))


class TestDiffReports:
    def test_deltas(self):
        before = report({"a": 50, "b": 50})
        after = report({"a": 80, "b": 20})
        d = diff_reports(before, after)
        rows = {r.symbol: r for r in d.rows}
        assert rows["a"].delta == pytest.approx(30.0)
        assert rows["b"].delta == pytest.approx(-30.0)

    def test_appeared_and_vanished(self):
        before = report({"a": 10})
        after = report({"b": 10})
        d = diff_reports(before, after)
        assert [r.symbol for r in d.appeared()] == ["b"]
        assert [r.symbol for r in d.vanished()] == ["a"]

    def test_regressions_and_improvements(self):
        before = report({"a": 10, "b": 90})
        after = report({"a": 90, "b": 10})
        d = diff_reports(before, after)
        assert [r.symbol for r in d.regressions()] == ["a"]
        assert [r.symbol for r in d.improvements()] == ["b"]

    def test_sorted_by_absolute_delta(self):
        before = report({"a": 50, "b": 45, "c": 5})
        after = report({"a": 5, "b": 55, "c": 40})
        d = diff_reports(before, after)
        assert d.sorted_by_delta()[0].symbol == "a"

    def test_no_common_event_rejected(self):
        before = report({"a": 1})
        after_samples = [resolved("a", event="BSQ_CACHE_REFERENCE")]
        after = build_report(after_samples, events=("BSQ_CACHE_REFERENCE",))
        with pytest.raises(ConfigError, match="share no event"):
            diff_reports(before, after)

    def test_explicit_missing_event_rejected(self):
        with pytest.raises(ConfigError):
            diff_reports(report({"a": 1}), report({"a": 1}), event="NOPE")

    def test_format_table(self):
        d = diff_reports(report({"a": 1}), report({"a": 1}))
        assert "delta" in d.format_table()

    def test_identical_reports_zero_delta(self):
        d = diff_reports(report({"a": 3, "b": 1}), report({"a": 3, "b": 1}))
        assert all(r.delta == 0.0 for r in d.rows)
