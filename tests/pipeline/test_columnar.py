"""Columnar (deduplicated batch) resolution parity.

The columnar path (:mod:`repro.pipeline.columnar`) must be a pure
performance feature: byte-identical reports *and* identical resolution
statistics to the scalar per-sample loop, for every worker count, with
the cache on or off, in strict and degraded (quarantined-epoch) mode.
These tests pin that contract against the golden fixtures, against
randomized shuffled/duplicated sample streams, and against a salvaged
world with a quarantine barrier.
"""

import random
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProfilerError
from repro.pipeline.parallel import ShardChunk, consume_chunks
from repro.pipeline.resolver import ResolverChain
from repro.pipeline.stages import JitEpochStage
from repro.profiling.model import RawSample
from repro.profiling.record_codec import CORE_CODEC, RecordFileWriter
from repro.profiling.report import StreamingAggregator
from repro.system.api import viprof_profile
from repro.viprof.codemap import CodeMapIndex, CodeMapRecord, CodeMapWriter
from repro.viprof.runtime_profiler import VmRegistration
from repro.workloads import by_name

GOLDEN = Path(__file__).resolve().parents[1] / "fixtures" / "golden"


class TestGoldenColumnarParity:
    """Columnar output vs the golden fixtures and the scalar loop."""

    @pytest.fixture(scope="class")
    def run(self):
        return viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.1, seed=7
        )

    def render(self, run, workers, columnar, resolve_cache=True):
        vr = run.viprof_report(
            workers=workers, columnar=columnar, resolve_cache=resolve_cache
        )
        s = vr.jit_stats
        text = vr.report.format_table(limit=15) + "\n"
        text += (
            f"{s.jit_samples} JIT samples, "
            f"{100 * s.resolution_rate:.1f}% resolved\n"
        )
        return text, vr.stage_stats

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_golden_bytes(self, run, workers):
        text, _ = self.render(run, workers, columnar=True)
        assert text == (GOLDEN / "report_fop.txt").read_text()

    def test_stats_match_scalar_cache_on(self, run):
        # workers=1, no eviction pressure: every counter — per-stage
        # hit/miss, JIT detail, cache hit/miss/size — must agree.
        _, scalar = self.render(run, 1, columnar=False)
        _, columnar = self.render(run, 1, columnar=True)
        assert columnar == scalar

    def test_stats_match_scalar_cache_off(self, run):
        _, scalar = self.render(run, 1, columnar=False, resolve_cache=False)
        _, columnar = self.render(run, 1, columnar=True, resolve_cache=False)
        assert columnar == scalar

    def test_cache_off_matches_golden_bytes(self, run):
        text, _ = self.render(run, 1, columnar=True, resolve_cache=False)
        assert text == (GOLDEN / "report_fop.txt").read_text()

    def test_opreport_columnar_matches_scalar(self, run):
        scalar = run.oprofile_report(columnar=False)
        columnar = run.oprofile_report(columnar=True)
        assert columnar.format_table() == scalar.format_table()
        assert columnar.totals == scalar.totals


# ----------------------------------------------------------------------
# Synthetic epoch world: a small code-map history with a recycled
# address, used for the randomized and quarantine parity tests below.
# ----------------------------------------------------------------------

HEAP_LO = 0x6000_0000
HEAP_HI = 0x7000_0000
BODY = 0x100
EPOCHS = 6
TASK = 9
OTHER_TASK = 11  # not registered: falls through to the fallback stage


def _write_world(map_dir: Path) -> None:
    """Epoch e compiles ``m{e}`` at HEAP_LO + e*0x1000; epoch 4 also
    recycles m0's address for ``r4`` (the backward walk's hard case)."""
    writer = CodeMapWriter(map_dir)
    for epoch in range(EPOCHS):
        records = [
            CodeMapRecord(
                address=HEAP_LO + epoch * 0x1000, size=BODY,
                tier="base", name=f"m{epoch}",
            )
        ]
        if epoch == 4:
            records.append(
                CodeMapRecord(
                    address=HEAP_LO, size=BODY, tier="base", name="r4"
                )
            )
        writer.write(epoch, records)


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    map_dir = tmp_path_factory.mktemp("columnar-world")
    _write_world(map_dir)
    return map_dir


def _make_chain(
    map_dir: Path,
    cache_size: int = 1 << 16,
    strict: bool = True,
    quarantined=frozenset(),
) -> ResolverChain:
    index = CodeMapIndex.load_dir(map_dir, quarantined=quarantined)
    stage = JitEpochStage(
        index,
        [VmRegistration(TASK, HEAP_LO, HEAP_HI)],
        strict=strict,
    )
    return ResolverChain([stage], cache_size=cache_size)


def _run_samples(samples, chain, columnar):
    """Write the samples to a record file and resolve them through the
    real chunked loop (the path both production modes take)."""
    agg = StreamingAggregator()
    with tempfile.TemporaryDirectory(prefix="columnar-test-") as tmp:
        path = Path(tmp) / "ev.samples"
        with RecordFileWriter(path, CORE_CODEC, "EV", period=1000) as w:
            for s in samples:
                w.write(s)
        consume_chunks(
            [ShardChunk(str(path), 0, len(samples))],
            chain,
            agg,
            columnar=columnar,
        )
    return agg


def _assert_parity(samples, make_scalar, make_columnar):
    scalar_chain = make_scalar()
    columnar_chain = make_columnar()
    scalar = _run_samples(samples, scalar_chain, columnar=False)
    columnar = _run_samples(samples, columnar_chain, columnar=True)
    assert columnar.report().format_table() == scalar.report().format_table()
    assert columnar.report().totals == scalar.report().totals
    assert columnar_chain.stats_dict() == scalar_chain.stats_dict()


class TestRandomizedParity:
    """Shuffled, duplicated PCs across epoch boundaries resolve to the
    same multiset (and the same bytes, and the same counters) either way."""

    @given(
        specs=st.lists(
            st.tuples(
                st.integers(0, EPOCHS - 1),     # body index
                st.integers(0, BODY - 1),       # offset inside the body
                st.integers(0, EPOCHS - 1),     # sample epoch
                st.sampled_from([TASK, TASK, TASK, OTHER_TASK]),
                st.integers(1, 4),              # duplicates
            ),
            min_size=1,
            max_size=40,
        ),
        shuffle_seed=st.integers(0, 2**32 - 1),
        cache_on=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_scalar_columnar_agree(
        self, world_dir, specs, shuffle_seed, cache_on
    ):
        samples = []
        for body, offset, epoch, task, dups in specs:
            pc = HEAP_LO + body * 0x1000 + offset
            for _ in range(dups):
                samples.append(
                    RawSample(
                        pc=pc, event_name="EV", task_id=task,
                        kernel_mode=False, cycle=len(samples), epoch=epoch,
                    )
                )
        random.Random(shuffle_seed).shuffle(samples)
        cache_size = (1 << 16) if cache_on else 0
        _assert_parity(
            samples,
            lambda: _make_chain(world_dir, cache_size=cache_size),
            lambda: _make_chain(world_dir, cache_size=cache_size),
        )

    def test_recycled_address_attributed_per_epoch(self, world_dir):
        # Deterministic pin of the cross-epoch case: HEAP_LO is m0 before
        # epoch 4 and r4 from epoch 4 on, in the same columnar chunk.
        samples = [
            RawSample(
                pc=HEAP_LO + 1, event_name="EV", task_id=TASK,
                kernel_mode=False, cycle=i, epoch=epoch,
            )
            for i, epoch in enumerate([0, 4, 2, 5, 0, 4])
        ]
        chain = _make_chain(world_dir)
        agg = _run_samples(samples, chain, columnar=True)
        rows = {
            (r.image, r.symbol): r.counts["EV"]
            for r in agg.report().sorted_rows()
        }
        assert rows[("JIT.App", "m0")] == 3
        assert rows[("JIT.App", "r4")] == 3


class TestQuarantinedParity:
    """Degraded (strict=False) columnar runs must account blocked
    samples exactly like the scalar loop; strict runs must refuse."""

    @pytest.fixture(scope="class")
    def guarded_dir(self, tmp_path_factory):
        # The salvaged view: epoch 3's map lost, its epoch fenced off.
        full = tmp_path_factory.mktemp("columnar-q-full")
        _write_world(full)
        guarded = tmp_path_factory.mktemp("columnar-q-guarded")
        for p in sorted(full.iterdir()):
            if not p.name.endswith("00003"):
                shutil.copy(p, guarded / p.name)
        return guarded

    def blocked_samples(self):
        # Epoch-3 samples (their own map is quarantined: always blocked)
        # mixed with resolvable earlier/later samples and duplicates.
        spec = [(3, 0), (0, 0), (3, 0), (5, 5), (3, 8), (4, 0), (3, 0)]
        return [
            RawSample(
                pc=HEAP_LO + off, event_name="EV", task_id=TASK,
                kernel_mode=False, cycle=i, epoch=epoch,
            )
            for i, (epoch, off) in enumerate(spec)
        ]

    @pytest.mark.parametrize("cache_size", [1 << 16, 0])
    def test_degraded_accounting_matches_scalar(
        self, guarded_dir, cache_size
    ):
        quarantine = frozenset({3})
        make = lambda: _make_chain(  # noqa: E731
            guarded_dir,
            cache_size=cache_size,
            strict=False,
            quarantined=quarantine,
        )
        samples = self.blocked_samples()
        scalar_chain, columnar_chain = make(), make()
        scalar = _run_samples(samples, scalar_chain, columnar=False)
        columnar = _run_samples(samples, columnar_chain, columnar=True)
        assert (
            columnar.report().format_table()
            == scalar.report().format_table()
        )
        col_stats = columnar_chain.stats_dict()
        assert col_stats == scalar_chain.stats_dict()
        jit = next(
            s for s in col_stats["stages"] if s["stage"] == "jit-epoch"
        )
        assert jit["detail"]["blocked_at_quarantine"] == 4
        assert jit["degraded"] == {"blocked_at_quarantine": 4}
        assert col_stats["degraded"] is True

    @pytest.mark.parametrize("columnar", [False, True])
    def test_strict_mode_refuses_blocked_walks(self, guarded_dir, columnar):
        chain = _make_chain(
            guarded_dir, strict=True, quarantined=frozenset({3})
        )
        with pytest.raises(ProfilerError, match="quarantined"):
            _run_samples(self.blocked_samples(), chain, columnar=columnar)
