"""Regression: per-domain inner-chain statistics must be visible in the
outer fleet chain's ``stats_dict``.

The multi-stack chain dispatches each sample into a per-domain inner
chain; before the fix the inner chains' cache and stage counters (the
JIT epoch split, quarantine losses, cache hit rates) were swallowed —
``stats_dict`` showed one opaque ``domain-dispatch`` hit count and the
top-level ``degraded`` flag stayed ``False`` even when an inner chain
ran in degraded mode.  Pinned here:

* the dispatch stage's ``detail`` carries each inner chain's full
  ``stats_dict`` keyed ``dom<N>`` (and :func:`per_domain_stats` lifts
  them out keyed by integer id);
* inner-chain degradation propagates: the dispatch stage aggregates the
  inner ``degraded_dict`` counters and flips the outer chain's
  ``degraded`` flag.
"""

import pytest

from repro.metrics.fleet import per_domain_stats
from repro.workloads.fleet import fleet_workloads
from repro.xen.fleet import run_fleet

_FLEET_N = 3


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    return run_fleet(
        fleet_workloads(_FLEET_N, base_time_s=0.05),
        period=20_000,
        session_dir=tmp_path_factory.mktemp("fleet-stats"),
    )


def _dispatch_entry(stats):
    return next(
        e for e in stats["stages"] if e["stage"] == "domain-dispatch"
    )


def test_dispatch_detail_exposes_inner_chains(session):
    _report, chain = session.resolve()
    stats = chain.stats_dict()
    detail = _dispatch_entry(stats)["detail"]
    assert sorted(detail) == [f"dom{d}" for d in sorted(session.domain_ids)]
    for did in session.domain_ids:
        sub = detail[f"dom{did}"]
        # Each entry is a complete inner-chain stats_dict, cache included.
        assert {"stages", "total_samples", "degraded", "cache"} <= set(sub)
        assert sub["cache"] is not None
        assert {e["stage"] for e in sub["stages"]} >= {
            "kernel",
            "jit-epoch",
            "boot-image",
        }


def test_per_domain_stats_lifts_detail_by_integer_id(session):
    _report, chain = session.resolve()
    stats = chain.stats_dict()
    inner = per_domain_stats(stats)
    assert list(inner) == sorted(session.domain_ids)
    detail = _dispatch_entry(stats)["detail"]
    for did, sub in inner.items():
        assert sub is detail[f"dom{did}"]
    # Inner totals partition the dispatch stage's hits exactly.
    assert sum(s["total_samples"] for s in inner.values()) == (
        _dispatch_entry(stats)["hits"]
    )


def test_per_domain_stats_ignores_single_stack_chains(session):
    chain = session.domain_chain(session.domain_ids[0])
    assert per_domain_stats(chain.stats_dict()) == {}
    assert per_domain_stats({"stages": "not-a-list"}) == {}


def test_clean_fleet_chain_is_not_degraded(session):
    _report, chain = session.resolve()
    stats = chain.stats_dict()
    assert stats["degraded"] is False
    assert "degraded" not in _dispatch_entry(stats)


def test_inner_degradation_propagates_to_outer_chain(tmp_path):
    # Quarantine every epoch of one domain (deleting its maps, the way
    # salvage leaves a damaged session) and resolve in degraded
    # (non-strict) mode: its JIT samples are blocked at the barrier, and
    # that loss must surface at the outer chain, charged to that domain
    # alone.  Own session — this mutates the on-disk maps.
    session = run_fleet(
        fleet_workloads(_FLEET_N, base_time_s=0.05),
        period=20_000,
        session_dir=tmp_path / "fleet",
    )
    victim = sorted(session.domain_ids)[0]
    maps = sorted((session.domain_dir(victim) / "jit-maps").glob("jit-map.*"))
    assert maps, "victim domain never emitted a code map"
    epochs = tuple(int(p.name.rsplit(".", 1)[1]) for p in maps)
    for p in maps:
        p.unlink()
    _report, chain = session.resolve(
        quarantined={victim: epochs}, strict=False
    )
    stats = chain.stats_dict()
    assert stats["degraded"] is True

    entry = _dispatch_entry(stats)
    inner = per_domain_stats(stats)
    blocked = {}
    for did, sub in inner.items():
        jit = next(e for e in sub["stages"] if e["stage"] == "jit-epoch")
        blocked[did] = jit["detail"]["blocked_at_quarantine"]
        # Non-strict mode is fleet-wide, so every inner chain reports
        # degradation counters — but only the victim's count losses.
        assert sub["degraded"] is True
    assert blocked[victim] > 0
    assert all(n == 0 for did, n in blocked.items() if did != victim)
    assert entry["degraded"] == {
        "blocked_at_quarantine": sum(blocked.values())
    }


def test_plain_viprof_chain_detail_is_unchanged(session):
    # The fix touches only the dispatch stage: a single-stack VIProf
    # chain's stats_dict keeps its flat shape (no dom-keyed nesting).
    chain = session.domain_chain(session.domain_ids[0])
    stats = chain.stats_dict()
    for e in stats["stages"]:
        detail = e.get("detail")
        if isinstance(detail, dict):
            assert not any(k.startswith("dom") for k in detail)
