"""Tests for the resolver chain: stage order, per-stage hit/miss
counters, stage-specific detail, and the chain-composition helpers."""

import pytest

from repro.errors import ProfilerError
from repro.jvm.bootimage import RVM_MAP_IMAGE_LABEL, build_boot_image
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.os.binary import NO_SYMBOLS, standard_libraries
from repro.os.kernel import Kernel
from repro.os.loader import ProgramLoader
from repro.pipeline import (
    UNKNOWN_IMAGE,
    UNRESOLVED_JIT,
    PipelineSample,
    ResolverChain,
    opreport_chain,
    viprof_chain,
)
from repro.pipeline.stages import JitEpochStage, KernelSymbolStage
from repro.profiling.model import RawSample
from repro.viprof.codemap import CodeMapIndex, CodeMapRecord, CodeMapWriter
from repro.viprof.runtime_profiler import VmRegistration

EV = "GLOBAL_POWER_EVENTS"


def sample(pc, task=1, kernel_mode=False, epoch=-1):
    return PipelineSample(
        raw=RawSample(
            pc=pc, event_name=EV, task_id=task,
            kernel_mode=kernel_mode, cycle=0, epoch=epoch,
        )
    )


@pytest.fixture
def rig(tmp_path):
    kernel = Kernel()
    proc = kernel.spawn("JikesRVM")
    loader = ProgramLoader(proc.address_space)
    libc_vma = loader.load_library(standard_libraries()[0])
    boot = build_boot_image()
    boot_vma = loader.map_file_segment(boot.image, at=0x6000_0000)
    heap_vma = loader.map_anonymous(0x200000, at=boot_vma.end + 0x1000)

    map_dir = tmp_path / "maps"
    writer = CodeMapWriter(map_dir)
    a0 = heap_vma.start + 0x100
    writer.write(0, [CodeMapRecord(a0, 0x200, "O0", "app.Main.hot")])

    chain = viprof_chain(
        kernel,
        CodeMapIndex.load_dir(map_dir),
        boot.rvm_map,
        (VmRegistration(proc.pid, heap_vma.start, heap_vma.end),),
    )
    return {
        "kernel": kernel, "proc": proc, "libc": libc_vma, "boot": boot,
        "boot_vma": boot_vma, "heap": heap_vma, "chain": chain, "a0": a0,
    }


class TestStageOrder:
    def test_kernel_claims_before_jit(self, rig):
        r = rig["chain"].resolve(
            sample(rig["kernel"].kernel_pc("do_page_fault"), kernel_mode=True)
        )
        assert (r.image, r.symbol) == ("vmlinux", "do_page_fault")
        st = {s.name: s for s in rig["chain"].stats()}
        assert st["kernel"].hits == 1
        assert st["jit-epoch"].offered == 0

    def test_jit_stage_claims_heap_sample(self, rig):
        r = rig["chain"].resolve(
            sample(rig["a0"] + 0x10, task=rig["proc"].pid, epoch=0)
        )
        assert (r.image, r.symbol) == (JIT_APP_IMAGE_LABEL, "app.Main.hot")
        assert r.offset == 0x10

    def test_jit_stage_is_terminal_for_heap_misses(self, rig):
        r = rig["chain"].resolve(
            sample(
                rig["heap"].start + 0x100000, task=rig["proc"].pid, epoch=0
            )
        )
        assert (r.image, r.symbol) == (JIT_APP_IMAGE_LABEL, UNRESOLVED_JIT)

    def test_other_tasks_heap_address_falls_past_jit(self, rig):
        other = rig["kernel"].spawn("other")
        r = rig["chain"].resolve(sample(rig["a0"], task=other.pid))
        assert r.image == UNKNOWN_IMAGE
        jit = rig["chain"].stage("jit-epoch")
        assert jit.stats.jit_samples == 0

    def test_boot_image_resolves_via_rvm_map(self, rig):
        entry = rig["boot"].rvm_map.find(
            "com.ibm.jikesrvm.VM_MainThread.run"
        )
        r = rig["chain"].resolve(
            sample(
                rig["boot_vma"].start + entry.offset + 4,
                task=rig["proc"].pid,
            )
        )
        assert r.image == RVM_MAP_IMAGE_LABEL
        assert r.symbol == "com.ibm.jikesrvm.VM_MainThread.run"

    def test_task_vma_resolves_libc(self, rig):
        libc = rig["libc"].image
        off = libc.find_symbol("memset").offset
        r = rig["chain"].resolve(
            sample(rig["libc"].start + off, task=rig["proc"].pid)
        )
        assert (r.image, r.symbol) == ("libc-2.3.2.so", "memset")

    def test_unmapped_pc_falls_back_to_unknown(self, rig):
        r = rig["chain"].resolve(sample(0x1, task=rig["proc"].pid))
        assert (r.image, r.symbol) == (UNKNOWN_IMAGE, NO_SYMBOLS)
        st = {s.name: s for s in rig["chain"].stats()}
        assert st["unresolved"].hits == 1


class TestCounters:
    def test_misses_count_fall_throughs(self, rig):
        libc = rig["libc"].image
        off = libc.find_symbol("memset").offset
        rig["chain"].resolve(
            sample(rig["libc"].start + off, task=rig["proc"].pid)
        )
        st = {s.name: s for s in rig["chain"].stats()}
        assert st["kernel"].misses == 1
        assert st["jit-epoch"].misses == 1
        assert st["boot-image"].misses == 1
        assert st["task-vma"].hits == 1

    def test_stats_dict_includes_jit_detail(self, rig):
        rig["chain"].resolve(
            sample(rig["a0"] + 4, task=rig["proc"].pid, epoch=0)
        )
        doc = rig["chain"].stats_dict()
        jit = next(
            e for e in doc["stages"] if e["stage"] == "jit-epoch"
        )
        assert jit["hits"] == 1
        assert jit["detail"]["resolved_in_own_epoch"] == 1
        assert jit["detail"]["resolution_rate"] == 1.0

    def test_resolve_stream_accepts_raw_samples(self, rig):
        raws = [
            RawSample(
                pc=rig["kernel"].kernel_pc("schedule"), event_name=EV,
                task_id=1, kernel_mode=True, cycle=0,
            )
        ] * 3
        out = list(rig["chain"].resolve_stream(iter(raws)))
        assert len(out) == 3
        assert {s.name: s for s in rig["chain"].stats()}["kernel"].hits == 3


class TestChainConstruction:
    def test_duplicate_stage_names_rejected(self, rig):
        k = rig["kernel"]
        with pytest.raises(ProfilerError, match="duplicate stage names"):
            ResolverChain([KernelSymbolStage(k), KernelSymbolStage(k)])

    def test_unknown_stage_lookup_rejected(self, rig):
        with pytest.raises(ProfilerError, match="no stage named"):
            rig["chain"].stage("nope")

    def test_opreport_chain_has_no_jit_stage(self, rig):
        chain = opreport_chain(rig["kernel"])
        assert [s.name for s in chain.stages] == ["kernel", "task-vma"]
        assert not any(
            isinstance(s, JitEpochStage) for s in chain.stages
        )
