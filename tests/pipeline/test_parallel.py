"""Sharded multi-process resolution: shard planning and output parity.

The contract under test (see :mod:`repro.pipeline.parallel`): sharding is
a pure performance feature — ``workers=N`` must produce byte-identical
reports *and* identical resolution statistics to the sequential pass, and
a shard plan must cover the directory's record stream exactly once, in
order, at aligned split points.
"""

from pathlib import Path

import pytest

from repro.errors import ProfilerError
from repro.pipeline.parallel import (
    MAX_AUTO_WORKERS,
    SPLIT_ALIGN_RECORDS,
    ShardChunk,
    plan_shards,
    resolve_workers,
    run_parallel_pipeline,
)
from repro.profiling.model import RawSample
from repro.profiling.record_codec import CORE_CODEC, RecordFileWriter
from repro.system.api import viprof_profile
from repro.workloads import by_name

GOLDEN = Path(__file__).resolve().parents[1] / "fixtures" / "golden"


def write_sample_file(path: Path, n_records: int, event: str = "EV") -> Path:
    """Synthesize a core-format sample file with ``n_records`` records."""
    with RecordFileWriter(path, CORE_CODEC, event, period=1000) as w:
        for i in range(n_records):
            w.write(
                RawSample(
                    pc=0x1000 + 8 * (i % 512), event_name=event,
                    task_id=1, kernel_mode=False, cycle=i, epoch=0,
                )
            )
    return path


class TestPlanShards:
    def plan(self, tmp_path, counts, workers):
        paths = [
            write_sample_file(tmp_path / f"{i:02d}.samples", n)
            for i, n in enumerate(counts)
        ]
        return paths, plan_shards(paths, workers)

    def test_covers_stream_exactly_once_in_order(self, tmp_path):
        counts = [100, 10_000, 1, 5000]
        paths, shards = self.plan(tmp_path, counts, 4)
        # Flattening the shards in index order must reproduce the record
        # stream: every file's records, in file order, each exactly once.
        flat = [c for shard in shards for c in shard]
        expected_order = [str(p) for p in paths]
        seen: dict[str, int] = {str(p): 0 for p in paths}
        file_cursor = 0
        for chunk in flat:
            # Chunks advance through files in sorted-path order.
            while expected_order[file_cursor] != chunk.path:
                file_cursor += 1
            assert chunk.start_record == seen[chunk.path]
            assert chunk.n_records > 0
            seen[chunk.path] += chunk.n_records
        assert seen == {str(p): n for p, n in zip(paths, counts)}

    def test_intra_file_splits_are_aligned(self, tmp_path):
        _, shards = self.plan(tmp_path, [20_000], 3)
        assert len(shards) > 1
        for shard in shards:
            for chunk in shard:
                assert chunk.start_record % SPLIT_ALIGN_RECORDS == 0

    def test_no_empty_shards_when_workers_exceed_records(self, tmp_path):
        _, shards = self.plan(tmp_path, [3], 8)
        assert all(shard for shard in shards)
        total = sum(c.n_records for shard in shards for c in shard)
        assert total == 3

    def test_empty_directory_plans_no_shards(self, tmp_path):
        _, shards = self.plan(tmp_path, [0, 0], 2)
        assert shards == []

    def test_rejects_non_positive_worker_count(self, tmp_path):
        with pytest.raises(ProfilerError):
            plan_shards([], 0)

    def test_shard_chunk_paths_are_strings(self, tmp_path):
        # Chunks cross the worker pickle boundary; Path objects would
        # pickle fine but cost more — the plan normalizes to str.
        _, shards = self.plan(tmp_path, [10], 1)
        assert all(
            isinstance(c.path, str) for shard in shards for c in shard
        )


class TestParallelGoldenParity:
    """``workers=N`` output must match the sequential golden fixtures."""

    @pytest.fixture(scope="class")
    def run(self):
        return viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.1, seed=7
        )

    def render(self, run, workers):
        vr = run.viprof_report(workers=workers)
        s = vr.jit_stats
        text = vr.report.format_table(limit=15) + "\n"
        text += (
            f"{s.jit_samples} JIT samples, "
            f"{100 * s.resolution_rate:.1f}% resolved\n"
        )
        return text, vr.stage_stats

    @pytest.mark.parametrize("workers", [2, 4])
    def test_matches_golden_bytes(self, run, workers):
        text, _ = self.render(run, workers)
        assert text == (GOLDEN / "report_fop.txt").read_text()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_statistics_match_sequential(self, run, workers):
        _, seq = self.render(run, 1)
        _, par = self.render(run, workers)
        # Stage counters and detail merge exactly; cache hit/miss counts
        # legitimately differ (each worker warms its own cache).
        assert par["stages"] == seq["stages"]
        assert par["total_samples"] == seq["total_samples"]

    def test_opreport_parallel_matches_sequential(self, run):
        seq = run.oprofile_report(workers=1)
        par = run.oprofile_report(workers=2)
        assert par.format_table() == seq.format_table()
        assert par.totals == seq.totals

    def test_excess_workers_still_exact(self, run):
        text, _ = self.render(run, 32)
        assert text == (GOLDEN / "report_fop.txt").read_text()


class TestResolveWorkers:
    def test_auto_is_bounded_by_cores_and_cap(self):
        import os

        got = resolve_workers("auto")
        cores = os.cpu_count() or 1
        if cores < 2:
            assert got == 1
        else:
            assert got == min(cores, MAX_AUTO_WORKERS)

    def test_integers_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    @pytest.mark.parametrize("bad", [True, 1.5, "four", None])
    def test_rejects_non_counts(self, bad):
        with pytest.raises(ProfilerError):
            resolve_workers(bad)


class TestShardTransport:
    """The packed shared-memory shard payload must round-trip a worker's
    aggregate + chain deltas exactly (same merge semantics as the old
    pickled-object transport)."""

    def build_shard_result(self, tmp_path):
        import pickle

        from repro.pipeline import ResolverChain
        from repro.pipeline.parallel import consume_chunks
        from repro.profiling.report import StreamingAggregator

        path = write_sample_file(tmp_path / "s.samples", 2000)
        parent = ResolverChain([])
        worker = pickle.loads(pickle.dumps(parent))
        worker.reset_stats()
        agg = StreamingAggregator(("EV",))
        consume_chunks([ShardChunk(str(path), 0, 2000)], worker, agg)
        return parent, worker, agg

    def test_pack_absorb_round_trips(self, tmp_path):
        from repro.pipeline.parallel import (
            _absorb_shard_payload,
            _pack_shard_payload,
        )
        from repro.profiling.report import StreamingAggregator

        parent, worker, agg = self.build_shard_result(tmp_path)
        blob = _pack_shard_payload(agg, worker)
        merged = StreamingAggregator(("EV",))
        _absorb_shard_payload(blob, merged, parent)
        assert parent.stats_dict() == worker.stats_dict()
        assert merged.samples_seen == agg.samples_seen
        assert (
            merged.report().format_table() == agg.report().format_table()
        )

    def test_absorb_rejects_mismatched_chain_shape(self, tmp_path):
        from repro.pipeline import ResolverChain
        from repro.pipeline.parallel import (
            _absorb_shard_payload,
            _pack_shard_payload,
        )
        from repro.pipeline.stages import JitEpochStage
        from repro.profiling.report import StreamingAggregator
        from repro.viprof.codemap import CodeMapIndex

        _, worker, agg = self.build_shard_result(tmp_path)
        blob = _pack_shard_payload(agg, worker)
        map_dir = tmp_path / "maps"
        map_dir.mkdir()
        other = ResolverChain(
            [JitEpochStage(CodeMapIndex.load_dir(map_dir), [])]
        )
        with pytest.raises(ProfilerError, match="diverged"):
            _absorb_shard_payload(blob, StreamingAggregator(("EV",)), other)

    def test_undersized_segment_falls_back_to_pickle(self, tmp_path):
        import pickle

        from multiprocessing import shared_memory

        from repro.pipeline import ResolverChain
        from repro.pipeline.parallel import _resolve_shard_worker

        path = write_sample_file(tmp_path / "s.samples", 100)
        chain_bytes = pickle.dumps(ResolverChain([]))
        segment = shared_memory.SharedMemory(create=True, size=8)
        try:
            kind, value = _resolve_shard_worker(
                (
                    chain_bytes,
                    [ShardChunk(str(path), 0, 100)],
                    ("EV",),
                    True,
                    segment.name,
                    None,
                )
            )
        finally:
            segment.close()
            segment.unlink()
        assert kind == "pickled"
        assert isinstance(value, bytes)

    def test_pack_rows_round_trips_dropped_samples(self):
        from repro.profiling.report import StreamingAggregator

        agg = StreamingAggregator(("A",))
        agg.add_counts("A", "img", "sym", 5)
        agg.add_counts("B", "img", "other", 3)  # filtered event: dropped
        merged = StreamingAggregator(("A",))
        merged.absorb_packed_rows(agg.pack_rows())
        assert merged.samples_seen == agg.samples_seen == 8
        assert merged.report().totals == agg.report().totals


class TestWorkerCacheStats:
    """Sharded runs must report merged cache statistics — in particular a
    non-zero size (the old transport dropped worker cache sizes)."""

    def test_parallel_cache_size_is_reported(self):
        run = viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.1, seed=7
        )
        seq = run.viprof_report(workers=1).stage_stats["cache"]
        par = run.viprof_report(workers=2).stage_stats["cache"]
        # Max-merge policy: worker caches hold disjoint-shard working
        # sets that overlap on hot keys, so the merged size is the
        # largest worker cache — positive, never above the sequential
        # distinct-key count.
        assert 0 < par["size"] <= seq["size"]
        assert par["hits"] + par["misses"] == seq["hits"] + seq["misses"]


class TestParallelGuards:
    def test_rejects_in_memory_sources(self):
        from repro.pipeline import ResolverChain

        with pytest.raises(ProfilerError, match="directory-backed"):
            run_parallel_pipeline(
                iter([]), ResolverChain([]), events=None, workers=2
            )

    def test_pid_filter_is_sequential_only(self):
        run = viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.1, seed=7
        )
        from repro.oprofile.opreport import OpReport

        rep = OpReport(run.kernel, run.sample_dir)
        with pytest.raises(ProfilerError, match="pid"):
            rep.generate(pid=1, workers=2)

    def test_consume_chunks_rejects_bad_range(self, tmp_path):
        from repro.errors import SampleFormatError
        from repro.pipeline import ResolverChain
        from repro.pipeline.parallel import consume_chunks
        from repro.profiling.report import StreamingAggregator

        path = write_sample_file(tmp_path / "x.samples", 10)
        chain = ResolverChain([])
        with pytest.raises(SampleFormatError, match="shard"):
            consume_chunks(
                [ShardChunk(str(path), 5, 20)],
                chain,
                StreamingAggregator(),
            )
