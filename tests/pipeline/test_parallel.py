"""Sharded multi-process resolution: shard planning and output parity.

The contract under test (see :mod:`repro.pipeline.parallel`): sharding is
a pure performance feature — ``workers=N`` must produce byte-identical
reports *and* identical resolution statistics to the sequential pass, and
a shard plan must cover the directory's record stream exactly once, in
order, at aligned split points.
"""

from pathlib import Path

import pytest

from repro.errors import ProfilerError
from repro.pipeline.parallel import (
    SPLIT_ALIGN_RECORDS,
    ShardChunk,
    plan_shards,
    run_parallel_pipeline,
)
from repro.profiling.model import RawSample
from repro.profiling.record_codec import CORE_CODEC, RecordFileWriter
from repro.system.api import viprof_profile
from repro.workloads import by_name

GOLDEN = Path(__file__).resolve().parents[1] / "fixtures" / "golden"


def write_sample_file(path: Path, n_records: int, event: str = "EV") -> Path:
    """Synthesize a core-format sample file with ``n_records`` records."""
    with RecordFileWriter(path, CORE_CODEC, event, period=1000) as w:
        for i in range(n_records):
            w.write(
                RawSample(
                    pc=0x1000 + 8 * (i % 512), event_name=event,
                    task_id=1, kernel_mode=False, cycle=i, epoch=0,
                )
            )
    return path


class TestPlanShards:
    def plan(self, tmp_path, counts, workers):
        paths = [
            write_sample_file(tmp_path / f"{i:02d}.samples", n)
            for i, n in enumerate(counts)
        ]
        return paths, plan_shards(paths, workers)

    def test_covers_stream_exactly_once_in_order(self, tmp_path):
        counts = [100, 10_000, 1, 5000]
        paths, shards = self.plan(tmp_path, counts, 4)
        # Flattening the shards in index order must reproduce the record
        # stream: every file's records, in file order, each exactly once.
        flat = [c for shard in shards for c in shard]
        expected_order = [str(p) for p in paths]
        seen: dict[str, int] = {str(p): 0 for p in paths}
        file_cursor = 0
        for chunk in flat:
            # Chunks advance through files in sorted-path order.
            while expected_order[file_cursor] != chunk.path:
                file_cursor += 1
            assert chunk.start_record == seen[chunk.path]
            assert chunk.n_records > 0
            seen[chunk.path] += chunk.n_records
        assert seen == {str(p): n for p, n in zip(paths, counts)}

    def test_intra_file_splits_are_aligned(self, tmp_path):
        _, shards = self.plan(tmp_path, [20_000], 3)
        assert len(shards) > 1
        for shard in shards:
            for chunk in shard:
                assert chunk.start_record % SPLIT_ALIGN_RECORDS == 0

    def test_no_empty_shards_when_workers_exceed_records(self, tmp_path):
        _, shards = self.plan(tmp_path, [3], 8)
        assert all(shard for shard in shards)
        total = sum(c.n_records for shard in shards for c in shard)
        assert total == 3

    def test_empty_directory_plans_no_shards(self, tmp_path):
        _, shards = self.plan(tmp_path, [0, 0], 2)
        assert shards == []

    def test_rejects_non_positive_worker_count(self, tmp_path):
        with pytest.raises(ProfilerError):
            plan_shards([], 0)

    def test_shard_chunk_paths_are_strings(self, tmp_path):
        # Chunks cross the worker pickle boundary; Path objects would
        # pickle fine but cost more — the plan normalizes to str.
        _, shards = self.plan(tmp_path, [10], 1)
        assert all(
            isinstance(c.path, str) for shard in shards for c in shard
        )


class TestParallelGoldenParity:
    """``workers=N`` output must match the sequential golden fixtures."""

    @pytest.fixture(scope="class")
    def run(self):
        return viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.1, seed=7
        )

    def render(self, run, workers):
        vr = run.viprof_report(workers=workers)
        s = vr.jit_stats
        text = vr.report.format_table(limit=15) + "\n"
        text += (
            f"{s.jit_samples} JIT samples, "
            f"{100 * s.resolution_rate:.1f}% resolved\n"
        )
        return text, vr.stage_stats

    @pytest.mark.parametrize("workers", [2, 4])
    def test_matches_golden_bytes(self, run, workers):
        text, _ = self.render(run, workers)
        assert text == (GOLDEN / "report_fop.txt").read_text()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_statistics_match_sequential(self, run, workers):
        _, seq = self.render(run, 1)
        _, par = self.render(run, workers)
        # Stage counters and detail merge exactly; cache hit/miss counts
        # legitimately differ (each worker warms its own cache).
        assert par["stages"] == seq["stages"]
        assert par["total_samples"] == seq["total_samples"]

    def test_opreport_parallel_matches_sequential(self, run):
        seq = run.oprofile_report(workers=1)
        par = run.oprofile_report(workers=2)
        assert par.format_table() == seq.format_table()
        assert par.totals == seq.totals

    def test_excess_workers_still_exact(self, run):
        text, _ = self.render(run, 32)
        assert text == (GOLDEN / "report_fop.txt").read_text()


class TestParallelGuards:
    def test_rejects_in_memory_sources(self):
        from repro.pipeline import ResolverChain

        with pytest.raises(ProfilerError, match="directory-backed"):
            run_parallel_pipeline(
                iter([]), ResolverChain([]), events=None, workers=2
            )

    def test_pid_filter_is_sequential_only(self):
        run = viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.1, seed=7
        )
        from repro.oprofile.opreport import OpReport

        rep = OpReport(run.kernel, run.sample_dir)
        with pytest.raises(ProfilerError, match="pid"):
            rep.generate(pid=1, workers=2)

    def test_consume_chunks_rejects_bad_range(self, tmp_path):
        from repro.errors import SampleFormatError
        from repro.pipeline import ResolverChain
        from repro.pipeline.parallel import consume_chunks
        from repro.profiling.report import StreamingAggregator

        path = write_sample_file(tmp_path / "x.samples", 10)
        chain = ResolverChain([])
        with pytest.raises(SampleFormatError, match="shard"):
            consume_chunks(
                [ShardChunk(str(path), 5, 20)],
                chain,
                StreamingAggregator(),
            )
