"""The epoch-aware resolution cache and the codemap walk memo.

Caching is transparency-tested: a cached run must match an uncached run
byte for byte — report *and* per-stage statistics — because cache hits
replay the claiming stage's counter updates exactly.
"""

import pytest

from repro.errors import ProfilerError, SampleFormatError
from repro.pipeline.cache import CachedResolution, ResolutionCache
from repro.pipeline.resolver import StageStats
from repro.system.api import viprof_profile
from repro.viprof.codemap import CodeMap, CodeMapIndex, CodeMapRecord
from repro.workloads import by_name


def entry(i: int) -> CachedResolution:
    return CachedResolution(
        image="img", symbol=f"sym{i}", offset=i, claim_index=0
    )


class TestResolutionCache:
    def test_counts_hits_and_misses(self):
        c = ResolutionCache(capacity=4)
        assert c.get(("k",)) is None
        c.put(("k",), entry(1))
        assert c.get(("k",)).symbol == "sym1"
        assert (c.hits, c.misses) == (1, 1)
        assert c.hit_rate == 0.5

    def test_lru_eviction_order(self):
        c = ResolutionCache(capacity=2)
        c.put(("a",), entry(1))
        c.put(("b",), entry(2))
        assert c.get(("a",)) is not None  # refresh a; b is now LRU
        c.put(("c",), entry(3))
        assert len(c) == 2
        assert c.get(("b",)) is None
        assert c.get(("a",)) is not None
        assert c.get(("c",)) is not None

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ProfilerError):
            ResolutionCache(capacity=0)

    def test_clear_and_reset_counters(self):
        c = ResolutionCache(capacity=2)
        c.put(("a",), entry(1))
        c.get(("a",))
        c.reset_counters()
        assert (c.hits, c.misses) == (0, 0)
        assert len(c) == 1  # entries stay warm
        c.clear()
        assert len(c) == 0

    def test_stats_dict_shape(self):
        c = ResolutionCache(capacity=8)
        c.put(("a",), entry(1))
        c.get(("a",))
        d = c.stats_dict()
        assert d == {
            "capacity": 8, "size": 1, "hits": 1, "misses": 0,
            "hit_rate": 1.0,
        }

    def test_empty_cache_is_still_reported(self):
        # ResolutionCache defines __len__, so an *empty* cache is falsy;
        # stats_dict() must test `is not None`, not truthiness.
        from repro.pipeline import ResolverChain

        chain = ResolverChain([])
        assert len(chain.cache) == 0
        assert chain.stats_dict()["cache"] is not None


class TestStageStatsInvariants:
    def test_terminal_stage_with_misses_fails_check(self):
        st = StageStats("unresolved", hits=3, misses=1, terminal=True)
        with pytest.raises(ProfilerError, match="terminal"):
            st.check()

    def test_terminal_stage_offered_equals_hits(self):
        st = StageStats("unresolved", hits=3, terminal=True)
        assert st.check().offered == st.hits

    def test_merge_rejects_mismatched_stages(self):
        with pytest.raises(ProfilerError):
            StageStats("a").merge(StageStats("b"))
        with pytest.raises(ProfilerError):
            StageStats("a", terminal=True).merge(StageStats("a"))


class TestChainCacheTransparency:
    @pytest.fixture(scope="class")
    def run(self):
        return viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.12, seed=11
        )

    def test_cached_equals_uncached_bytes_and_stats(self, run):
        hot = run.viprof_report(resolve_cache=True)
        cold = run.viprof_report(resolve_cache=False)
        assert hot.report.format_table() == cold.report.format_table()
        hs, cs = hot.stage_stats, cold.stage_stats
        assert hs["stages"] == cs["stages"]
        assert hs["total_samples"] == cs["total_samples"]
        assert cs["cache"] is None
        assert hs["cache"]["hits"] + hs["cache"]["misses"] == (
            hs["total_samples"]
        )

    def test_warm_chain_replays_counters_exactly(self, run):
        vr = run.viprof_report()
        post = vr.post
        first = [
            (st.name, st.hits, st.misses) for st in post.chain.stats()
        ]
        jit_first = dict(post.chain.stage("jit-epoch").detail_dict())
        # Second pass over the same stream: every sample is a cache hit,
        # and replay must double every counter — detail included.
        for resolved in post.resolved_samples():
            pass
        assert post.chain.cache.hits > 0
        for (name, h, m), st in zip(first, post.chain.stats()):
            assert (st.name, st.hits, st.misses) == (name, 2 * h, 2 * m)
        jit_second = post.chain.stage("jit-epoch").detail_dict()
        for key in (
            "jit_samples", "resolved_in_own_epoch",
            "resolved_in_earlier_epoch", "unresolved",
        ):
            assert jit_second[key] == 2 * jit_first[key]

    def test_total_samples_is_stream_length(self, run):
        vr = run.viprof_report()
        assert vr.post.chain.total_samples == len(vr.post.read_samples())

    def test_xen_outer_chain_never_caches(self):
        from repro.os.kernel import Kernel
        from repro.pipeline import (
            DomainDispatchStage,
            ResolverChain,
            opreport_chain,
        )

        inner = opreport_chain(Kernel())
        outer = ResolverChain([DomainDispatchStage({0: inner})])
        assert outer.cache is None  # hits could not replay inner counters
        assert inner.cache is not None


class TestCodeMapMemo:
    def index(self) -> CodeMapIndex:
        rec = lambda a, name: CodeMapRecord(  # noqa: E731
            address=a, size=0x10, tier="O1", name=name
        )
        return CodeMapIndex({
            0: CodeMap(0, [rec(0x1000, "m.zero")]),
            1: CodeMap(1, [rec(0x2000, "m.one")]),
            3: CodeMap(3, [rec(0x3000, "m.three")]),
        })

    def test_memo_short_circuits_repeat_walks(self):
        idx = self.index()
        first = idx.resolve(3, 0x1008)  # walks 3 -> 1 -> 0
        steps = idx.fallback_steps
        again = idx.resolve(3, 0x1008)
        assert again == first and first[0].name == "m.zero"
        assert idx.memo_hits == 1
        assert idx.fallback_steps == steps  # no re-walk
        assert idx.lookups == 2  # lookups still count every call

    def test_memo_results_match_fresh_index(self):
        warm = self.index()
        for _ in range(2):  # second round is all memo hits
            for epoch in (0, 1, 2, 3, 9):
                for addr in (0x1008, 0x2008, 0x3008, 0x9999):
                    fresh = self.index().resolve(epoch, addr)
                    assert warm.resolve(epoch, addr) == fresh

    def test_negative_results_are_memoized(self):
        idx = self.index()
        assert idx.resolve(3, 0xDEAD) is None
        assert idx.resolve(3, 0xDEAD) is None
        assert idx.memo_hits == 1

    def test_memo_is_bounded(self):
        idx = self.index()
        idx.MEMO_CAPACITY = 4  # shadow the class bound for the test
        for addr in range(0x1000, 0x1000 + 16):
            idx.resolve(3, addr)
        assert len(idx._memo) <= 4

    def test_ablation_keys_separately(self):
        idx = self.index()
        assert idx.resolve(3, 0x1008, backward=True) is not None
        # Same (top, addr) with backward=False is a different walk and
        # must not hit the backward entry.
        assert idx.resolve(3, 0x1008, backward=False) is None


class TestReaderHandleHygiene:
    def make(self, tmp_path, n=10):
        from tests.pipeline.test_parallel import write_sample_file

        return write_sample_file(tmp_path / "h.samples", n)

    def test_context_manager_releases_handle(self, tmp_path):
        from repro.profiling.record_codec import RecordFileReader

        with RecordFileReader(self.make(tmp_path)) as reader:
            assert reader._fh is not None
            n = sum(1 for _ in reader)
        assert n == 10
        assert reader._fh is None

    def test_closed_reader_can_still_iterate(self, tmp_path):
        from repro.profiling.record_codec import RecordFileReader

        reader = RecordFileReader(self.make(tmp_path))
        reader.close()
        assert sum(1 for _ in reader) == 10  # opens a private handle

    def test_concurrent_iterations_do_not_collide(self, tmp_path):
        from repro.profiling.record_codec import RecordFileReader

        with RecordFileReader(self.make(tmp_path)) as reader:
            outer = reader.iter_records()
            first = next(outer)
            inner = list(reader.iter_records())  # private handle
            rest = list(outer)
        assert len(inner) == 10
        assert [first, *rest] == inner

    def test_range_validation(self, tmp_path):
        from repro.profiling.record_codec import RecordFileReader

        with RecordFileReader(self.make(tmp_path)) as reader:
            with pytest.raises(SampleFormatError):
                list(reader.iter_field_chunks(start_record=11))
            with pytest.raises(SampleFormatError):
                list(reader.iter_field_chunks(0, 11))
            assert sum(len(c) for c in reader.iter_field_chunks(4, 6)) == 6
