"""Tests for the shared record codec: roundtrips through both registered
formats, magic sniffing, legacy layout stability, and the path + byte
offset contract on corruption errors."""

import struct

import pytest

from repro.errors import SampleFormatError
from repro.profiling.model import RawSample
from repro.profiling.record_codec import (
    CORE_CODEC,
    DOMAIN_CODEC,
    RecordCodec,
    RecordFileReader,
    RecordFileWriter,
    codec_for_magic,
    open_sample_record_file,
    register_codec,
)


def raw(pc=0x1000, task=7, epoch=3):
    return RawSample(
        pc=pc, event_name="GLOBAL_POWER_EVENTS", task_id=task,
        kernel_mode=False, cycle=12345, epoch=epoch,
    )


class TestCodecRegistry:
    def test_known_magics(self):
        assert codec_for_magic(b"VPRS") is CORE_CODEC
        assert codec_for_magic(b"XPRS") is DOMAIN_CODEC
        assert codec_for_magic(b"ZZZZ") is None

    def test_reregistering_same_codec_is_idempotent(self):
        assert register_codec(CORE_CODEC) is CORE_CODEC

    def test_conflicting_registration_rejected(self):
        clash = RecordCodec(magic=b"VPRS", version=99, has_domain=True)
        with pytest.raises(SampleFormatError, match="already registered"):
            register_codec(clash)

    def test_domain_column_is_the_only_difference(self):
        assert (
            DOMAIN_CODEC.record_size
            == CORE_CODEC.record_size + struct.calcsize("<H")
        )

    def test_domain_codec_requires_domain_id(self):
        with pytest.raises(SampleFormatError, match="domain id"):
            DOMAIN_CODEC.pack(raw())


class TestRoundTrip:
    def test_core_roundtrip(self, tmp_path):
        path = tmp_path / "e.samples"
        with RecordFileWriter(path, CORE_CODEC, "EV", 1000) as w:
            w.write(raw(pc=0xAA))
            w.write(raw(pc=0xBB))
        reader = open_sample_record_file(path)
        records = list(reader)
        assert [r.sample.pc for r in records] == [0xAA, 0xBB]
        assert all(r.domain_id is None for r in records)
        assert reader.event_name == "EV" and reader.period == 1000

    def test_domain_roundtrip(self, tmp_path):
        path = tmp_path / "x.samples"
        with RecordFileWriter(path, DOMAIN_CODEC, "EV", 1000) as w:
            w.write(raw(pc=0xAA), domain_id=0)
            w.write(raw(pc=0xBB), domain_id=3)
        records = list(open_sample_record_file(path))
        assert [(r.sample.pc, r.domain_id) for r in records] == [
            (0xAA, 0), (0xBB, 3),
        ]

    def test_sniffed_reader_reports_len(self, tmp_path):
        path = tmp_path / "e.samples"
        with RecordFileWriter(path, CORE_CODEC, "EV", 1000) as w:
            for i in range(5):
                w.write(raw(pc=i))
        assert len(open_sample_record_file(path)) == 5

    def test_reader_is_reiterable(self, tmp_path):
        path = tmp_path / "e.samples"
        with RecordFileWriter(path, CORE_CODEC, "EV", 1000) as w:
            w.write(raw())
        reader = open_sample_record_file(path)
        assert len(list(reader)) == 1
        assert len(list(reader)) == 1

    def test_legacy_core_layout_is_stable(self, tmp_path):
        """The on-disk byte layout predates the codec registry; files
        written by hand in the legacy layout must still parse."""
        name = b"GLOBAL_POWER_EVENTS"
        blob = struct.pack("<4sHH", b"VPRS", 2, len(name)) + name
        blob += struct.pack("<Q", 90_000)
        blob += struct.pack("<QIBQq", 0xDEAD, 9, 1, 777, -1)
        path = tmp_path / "legacy.samples"
        path.write_bytes(blob)
        records = list(open_sample_record_file(path))
        assert len(records) == 1
        s = records[0].sample
        assert (s.pc, s.task_id, s.kernel_mode, s.cycle, s.epoch) == (
            0xDEAD, 9, True, 777, -1,
        )


class TestCorruptionErrors:
    def make_file(self, tmp_path, n=3):
        path = tmp_path / "e.samples"
        with RecordFileWriter(path, CORE_CODEC, "EV", 1000) as w:
            for i in range(n):
                w.write(raw(pc=i))
        return path

    def test_truncated_header_names_path_and_offset(self, tmp_path):
        path = tmp_path / "t.samples"
        path.write_bytes(b"VP")
        with pytest.raises(SampleFormatError) as e:
            open_sample_record_file(path)
        assert str(path) in str(e.value)
        assert "truncated header at byte offset 2" in str(e.value)

    def test_bad_magic_names_path_and_offset(self, tmp_path):
        path = tmp_path / "b.samples"
        path.write_bytes(b"NOPE" + bytes(32))
        with pytest.raises(SampleFormatError) as e:
            open_sample_record_file(path)
        assert str(path) in str(e.value)
        assert "bad magic" in str(e.value) and "byte offset 0" in str(e.value)

    def test_version_mismatch_names_expected_version(self, tmp_path):
        name = b"EV"
        blob = struct.pack("<4sHH", b"VPRS", 99, len(name)) + name
        blob += struct.pack("<Q", 1000)
        path = tmp_path / "v.samples"
        path.write_bytes(blob)
        with pytest.raises(SampleFormatError, match="version 99, expected 2"):
            open_sample_record_file(path)

    def test_torn_record_names_offset_and_sizes(self, tmp_path):
        path = self.make_file(tmp_path, n=2)
        path.write_bytes(path.read_bytes() + b"\x01\x02\x03")
        with pytest.raises(SampleFormatError) as e:
            open_sample_record_file(path)
        msg = str(e.value)
        assert str(path) in msg
        assert "torn record at byte offset" in msg
        assert "3 trailing bytes" in msg
        assert f"record size {CORE_CODEC.record_size}" in msg

    def test_pinned_reader_rejects_other_magic(self, tmp_path):
        path = tmp_path / "x.samples"
        with RecordFileWriter(path, DOMAIN_CODEC, "EV", 1000) as w:
            w.write(raw(), domain_id=0)
        with pytest.raises(SampleFormatError, match="bad magic"):
            RecordFileReader(path, codec=CORE_CODEC)
