"""Worker cache warm-up: seeded shard caches must be output-neutral.

The contract under test (see ``run_parallel_pipeline``'s ``warm_top_k``):
seeding a shard worker's resolution cache with the parent's hottest
entries changes only the hit/miss split — report bytes, stage counters
and hit+miss totals stay exactly what a cold parallel (or sequential)
run produces, because a cached entry replays the same per-stage counting
the full walk would have done.
"""

import pickle

import pytest

from repro.oprofile.opreport import OpReport
from repro.pipeline.cache import CachedResolution, ResolutionCache
from repro.system.api import viprof_profile
from repro.workloads import by_name


def entry(tag: int) -> CachedResolution:
    return CachedResolution(
        image="img", symbol=f"sym{tag}", offset=0, claim_index=0
    )


class TestExportAndSeed:
    def fill(self, cache, n):
        for i in range(n):
            cache.put((i,), entry(i))

    def test_export_is_coldest_first_mru_slice(self):
        cache = ResolutionCache(capacity=16)
        self.fill(cache, 6)
        cache.get((1,))  # now hottest
        warm = cache.export_warm(3)
        assert [k for k, _ in warm] == [(4,), (5,), (1,)]

    def test_export_bounds(self):
        cache = ResolutionCache(capacity=16)
        self.fill(cache, 4)
        assert len(cache.export_warm(100)) == 4
        assert cache.export_warm(0) == []

    def test_seed_preserves_recency_order(self):
        src = ResolutionCache(capacity=16)
        self.fill(src, 4)
        dst = ResolutionCache(capacity=3)
        dst.seed(src.export_warm(4))
        # Capacity 3: the coldest exported key fell off, hottest stayed.
        assert len(dst) == 3
        assert dst.get((0,)) is None
        assert dst.get((3,)) is not None

    def test_seed_touches_no_counters(self):
        src = ResolutionCache()
        self.fill(src, 5)
        dst = ResolutionCache()
        dst.seed(src.export_warm(5))
        assert dst.hits == 0
        # The seed-check probe above is the only miss source; fresh seed
        # leaves misses at whatever get() traffic caused, here zero.
        assert dst.misses == 0
        assert dst.get((2,)) is not None
        assert (dst.hits, dst.misses) == (1, 0)

    def test_pickle_ships_counters_not_entries(self):
        cache = ResolutionCache(capacity=8)
        self.fill(cache, 5)
        cache.get((0,))
        cache.get((99,))
        clone = pickle.loads(pickle.dumps(cache))
        assert (clone.hits, clone.misses) == (cache.hits, cache.misses)
        assert clone.capacity == cache.capacity
        assert len(clone) == 0


class TestWarmParallelParity:
    """End-to-end over a genuinely multi-shard source: enough records
    that ``plan_shards`` splits (single-shard plans take the sequential
    fallback, which never forks and so never exercises seeding)."""

    @pytest.fixture(scope="class")
    def run(self):
        return viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.1, seed=7
        )

    @pytest.fixture(scope="class")
    def sample_dir(self, run, tmp_path_factory):
        # Two files, 12k records each, 512 distinct PCs: far past the
        # split alignment, with the heavy key reuse warm-up targets.
        from tests.pipeline.test_parallel import write_sample_file

        d = tmp_path_factory.mktemp("warm-samples")
        write_sample_file(d / "a.samples", 12_000, event="EV")
        write_sample_file(d / "b.samples", 12_000, event="EV")
        return d

    def report(self, run, sample_dir):
        return OpReport(run.kernel, sample_dir)

    def cache_delta(self, rep, **kwargs):
        before = rep.chain.stats_dict()["cache"]
        report = rep.generate(**kwargs)
        after = rep.chain.stats_dict()["cache"]
        return report, {
            k: after[k] - before[k] for k in ("hits", "misses")
        }

    def test_plan_actually_shards(self, run, sample_dir):
        from repro.pipeline.parallel import plan_shards

        rep = self.report(run, sample_dir)
        assert len(plan_shards(rep.source.paths(), 2)) == 2

    def test_warm_workers_match_sequential_bytes_and_stats(
        self, run, sample_dir
    ):
        rep = self.report(run, sample_dir)
        seq = rep.generate(workers=1)
        warm = rep.generate(workers=2, warm_top_k=True)
        assert warm.format_table() == seq.format_table()
        assert warm.totals == seq.totals

    def test_seeding_moves_only_the_hit_miss_split(self, run, sample_dir):
        cold_rep = self.report(run, sample_dir)
        cold_rep.generate(workers=1)
        _, cold = self.cache_delta(cold_rep, workers=2)

        warm_rep = self.report(run, sample_dir)
        warm_rep.generate(workers=1)
        _, warm = self.cache_delta(warm_rep, workers=2, warm_top_k=True)

        assert (
            warm["hits"] + warm["misses"]
            == cold["hits"] + cold["misses"]
        )
        assert warm["hits"] > cold["hits"]
        assert warm["misses"] < cold["misses"]

    def test_full_seed_eliminates_repeat_misses(self, run, sample_dir):
        # Seeding every entry the sequential pass resolved means a worker
        # can only miss keys outside the parent's working set: for an
        # identical re-run over the same files, zero misses.
        rep = self.report(run, sample_dir)
        rep.generate(workers=1)
        distinct = len(rep.chain.cache)
        _, delta = self.cache_delta(
            rep, workers=2, warm_top_k=distinct
        )
        assert delta["misses"] == 0

    def test_warm_top_k_false_and_none_stay_cold(self, run, sample_dir):
        for flag in (None, False, 0):
            rep = self.report(run, sample_dir)
            rep.generate(workers=1)
            _, delta = self.cache_delta(rep, workers=2, warm_top_k=flag)
            assert delta["misses"] > 0

    def test_viprof_chain_accepts_warm_top_k(self, run):
        # The extended chain (JIT stages + codemap memo) threads the same
        # kwarg; output parity holds there too.
        from repro.viprof.postprocess import ViprofReport

        rep = run.viprof_session.report(run.boot.rvm_map)
        seq = rep.generate(workers=1)
        assert isinstance(rep, ViprofReport)
        warm = rep.generate(workers=2, warm_top_k=True)
        assert warm.format_table() == seq.format_table()
