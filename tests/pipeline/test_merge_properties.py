"""Merge properties: shard-and-merge must equal the sequential pass.

Hypothesis-style property tests over seeded random streams and random
split points (plain :mod:`random` — the CI image carries no property
testing library): for every mergeable statistic in the pipeline,

    merge(consume(shard_a), consume(shard_b)) == consume(shard_a + shard_b)

holds exactly — counters, row order, event order, and rendered bytes.
"""

import random

import pytest

from repro.errors import ProfilerError
from repro.pipeline.resolver import StageStats
from repro.pipeline.stages import JitStageStats
from repro.profiling.model import RawSample, ResolvedSample
from repro.profiling.report import StreamingAggregator, build_report

EVENTS = ("GLOBAL_POWER_EVENTS", "BSQ_CACHE_REFERENCE", "ITLB_MISS")
IMAGES = ("vmlinux", "JIT.App", "RVM.map", "libc.so", "(unknown)")
SYMBOLS = tuple(f"sym{i}" for i in range(12))


def random_stream(rng: random.Random, n: int) -> list[ResolvedSample]:
    out = []
    for i in range(n):
        out.append(
            ResolvedSample(
                raw=RawSample(
                    pc=rng.randrange(1, 1 << 32),
                    event_name=rng.choice(EVENTS),
                    task_id=rng.randrange(1, 4),
                    kernel_mode=rng.random() < 0.3,
                    cycle=i,
                    epoch=rng.randrange(-1, 4),
                ),
                image=rng.choice(IMAGES),
                symbol=rng.choice(SYMBOLS),
            )
        )
    return out


def split_points(rng: random.Random, n: int, shards: int) -> list[int]:
    cuts = sorted(rng.randrange(0, n + 1) for _ in range(shards - 1))
    return [0, *cuts, n]


def report_key(agg: StreamingAggregator):
    """Everything observable about an aggregate, order included."""
    rep = agg.report()
    return (
        rep.events,
        rep.totals,
        [(r.image, r.symbol, r.counts) for r in rep.rows],
        rep.format_table(),
        agg.samples_seen,
    )


class TestAggregatorMergeProperty:
    @pytest.mark.parametrize("seed", range(12))
    def test_merge_of_shards_equals_concatenated_stream(self, seed):
        rng = random.Random(seed)
        stream = random_stream(rng, rng.randrange(0, 400))
        shards = rng.randrange(2, 6)
        cuts = split_points(rng, len(stream), shards)
        fixed = (
            None if rng.random() < 0.5 else tuple(EVENTS[:rng.randrange(1, 4)])
        )

        whole = StreamingAggregator(fixed).extend(stream)
        merged = StreamingAggregator(fixed)
        for lo, hi in zip(cuts, cuts[1:]):
            merged.merge(StreamingAggregator(fixed).extend(stream[lo:hi]))
        assert report_key(merged) == report_key(whole)

    @pytest.mark.parametrize("seed", range(4))
    def test_dunder_add_is_non_mutating(self, seed):
        rng = random.Random(seed)
        stream = random_stream(rng, 100)
        a = StreamingAggregator().extend(stream[:40])
        b = StreamingAggregator().extend(stream[40:])
        before_a, before_b = report_key(a), report_key(b)
        combined = a + b
        assert report_key(a) == before_a
        assert report_key(b) == before_b
        assert report_key(combined) == report_key(
            StreamingAggregator().extend(stream)
        )

    def test_event_filter_drops_count_toward_samples_seen(self):
        stream = random_stream(random.Random(99), 200)
        fixed = (EVENTS[0],)
        whole = StreamingAggregator(fixed).extend(stream)
        merged = StreamingAggregator(fixed)
        merged.merge(StreamingAggregator(fixed).extend(stream[:77]))
        merged.merge(StreamingAggregator(fixed).extend(stream[77:]))
        assert merged.samples_seen == whole.samples_seen == 200

    def test_mismatched_event_selection_rejected(self):
        with pytest.raises(ProfilerError):
            StreamingAggregator(("a",)).merge(StreamingAggregator(("b",)))

    def test_build_report_matches_merged_report_bytes(self):
        rng = random.Random(5)
        stream = random_stream(rng, 300)
        merged = StreamingAggregator()
        merged.merge(StreamingAggregator().extend(stream[:150]))
        merged.merge(StreamingAggregator().extend(stream[150:]))
        assert (
            merged.report().format_table()
            == build_report(stream).format_table()
        )


class TestStageStatsMergeProperty:
    @pytest.mark.parametrize("seed", range(8))
    def test_merge_is_exact_sum(self, seed):
        rng = random.Random(seed)
        parts = [
            StageStats("s", rng.randrange(1000), rng.randrange(1000))
            for _ in range(rng.randrange(2, 6))
        ]
        acc = StageStats("s")
        for p in parts:
            acc.merge(p)
        assert acc.hits == sum(p.hits for p in parts)
        assert acc.misses == sum(p.misses for p in parts)
        assert acc.offered == sum(p.offered for p in parts)

    def test_dunder_add_is_non_mutating(self):
        a = StageStats("s", 3, 4)
        b = StageStats("s", 5, 6)
        c = a + b
        assert (a.hits, a.misses, b.hits, b.misses) == (3, 4, 5, 6)
        assert (c.hits, c.misses) == (8, 10)


class TestJitStatsMergeProperty:
    def random_stats(self, rng: random.Random) -> JitStageStats:
        s = JitStageStats()
        s.resolved_in_own_epoch = rng.randrange(500)
        s.resolved_in_earlier_epoch = rng.randrange(500)
        s.unresolved = rng.randrange(500)
        s.jit_samples = s.resolved + s.unresolved
        return s

    @pytest.mark.parametrize("seed", range(8))
    def test_merge_is_exact_sum(self, seed):
        rng = random.Random(seed)
        parts = [self.random_stats(rng) for _ in range(rng.randrange(2, 6))]
        acc = JitStageStats()
        for p in parts:
            acc.merge(p)
        for field in (
            "jit_samples", "resolved_in_own_epoch",
            "resolved_in_earlier_epoch", "unresolved",
        ):
            assert getattr(acc, field) == sum(
                getattr(p, field) for p in parts
            )
        whole = sum(p.resolved for p in parts)
        assert acc.resolved == whole
        if acc.jit_samples:
            assert acc.resolution_rate == whole / acc.jit_samples

    def test_dunder_add_is_non_mutating(self):
        rng = random.Random(0)
        a, b = self.random_stats(rng), self.random_stats(rng)
        snap = (a.jit_samples, b.jit_samples)
        c = a + b
        assert (a.jit_samples, b.jit_samples) == snap
        assert c.jit_samples == a.jit_samples + b.jit_samples


class TestChainShardMergeProperty:
    """End-to-end: resolving random splits of a real session on chain
    copies and absorbing their exported counters equals one sequential
    pass — stage counters and JIT detail, exactly."""

    @pytest.fixture(scope="class")
    def post(self):
        from repro.system.api import viprof_profile
        from repro.workloads import by_name

        return viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.12, seed=11
        ).viprof_report().post

    def stats_key(self, chain):
        d = chain.stats_dict()
        return (d["stages"], d["total_samples"])

    @pytest.mark.parametrize("seed", range(6))
    def test_absorbed_shards_equal_sequential(self, seed, post):
        rng = random.Random(seed)
        samples = list(post.source)
        cuts = split_points(rng, len(samples), rng.randrange(2, 5))

        sequential = post._build_chain()
        for s in samples:
            sequential.resolve(s)

        parent = post._build_chain()
        for lo, hi in zip(cuts, cuts[1:]):
            worker = post._build_chain()
            for s in samples[lo:hi]:
                worker.resolve(s)
            parent.absorb_stats(worker.export_stats())
        assert self.stats_key(parent) == self.stats_key(sequential)

    def test_export_stats_survives_pickle(self, post):
        import pickle

        chain = post._build_chain()
        for s in post.source:
            chain.resolve(s)
        snapshot = pickle.loads(pickle.dumps(chain.export_stats()))
        parent = post._build_chain()
        parent.absorb_stats(snapshot)
        assert self.stats_key(parent) == self.stats_key(chain)

    def test_absorb_rejects_unknown_stage(self, post):
        chain = post._build_chain()
        with pytest.raises(ProfilerError):
            chain.absorb_stats(
                {"stages": [("nope", 1, 2, False)], "details": {}}
            )
