"""Constant-memory guarantee: the pipeline resolves a 100k-sample file
without ever materializing the sample list."""

import tracemalloc

from repro.os.kernel import Kernel
from repro.pipeline import DirectorySource, opreport_chain, run_pipeline
from repro.profiling.model import RawSample
from repro.profiling.samplefile import SampleFileWriter

EV = "GLOBAL_POWER_EVENTS"
N_SAMPLES = 100_000

#: Generous ceiling for peak *additional* heap during the streaming pass.
#: The materialized equivalent (100k RawSample dataclasses plus the list)
#: is well over 10 MB; the stream should stay around one decode chunk.
PEAK_BYTES_LIMIT = 4 * 1024 * 1024


def write_big_file(sample_dir, kernel):
    sample_dir.mkdir()
    pcs = [
        kernel.kernel_pc("schedule"),
        kernel.kernel_pc("do_page_fault"),
        kernel.kernel_pc("handle_mm_fault"),
    ]
    with SampleFileWriter(sample_dir / f"{EV}.samples", EV, 1000) as w:
        for i in range(N_SAMPLES):
            w.write(
                RawSample(
                    pc=pcs[i % len(pcs)], event_name=EV, task_id=1,
                    kernel_mode=True, cycle=i,
                )
            )


class TestConstantMemoryStreaming:
    def test_100k_samples_stream_within_memory_bound(self, tmp_path):
        kernel = Kernel()
        sample_dir = tmp_path / "samples"
        write_big_file(sample_dir, kernel)

        source = DirectorySource(sample_dir)
        chain = opreport_chain(kernel)

        tracemalloc.start()
        try:
            report = run_pipeline(source, chain, events=(EV,))
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        assert report.totals[EV] == N_SAMPLES
        assert sum(s.hits for s in chain.stats()) == N_SAMPLES
        assert peak < PEAK_BYTES_LIMIT, (
            f"streaming pass peaked at {peak} bytes "
            f"(limit {PEAK_BYTES_LIMIT})"
        )

    def test_aggregator_state_is_per_symbol_not_per_sample(self, tmp_path):
        kernel = Kernel()
        sample_dir = tmp_path / "samples"
        write_big_file(sample_dir, kernel)
        report = run_pipeline(
            DirectorySource(sample_dir), opreport_chain(kernel), events=(EV,)
        )
        # 100k samples over three PCs collapse to three rows.
        assert len(report.rows) == 3
        assert sorted(r.count(EV) for r in report.rows) == [
            33333, 33333, 33334,
        ]
