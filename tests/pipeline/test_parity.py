"""Golden parity: the streaming pipeline's reports must be byte-identical
to the legacy batch resolvers' output.

The fixtures under ``tests/fixtures/golden/`` were captured from the
pre-pipeline resolver implementations (subclass-override ``OpReport``/
``ViprofReport`` and the hand-rolled Xen ``DomainResolver``) on seeded,
deterministic runs.  These tests regenerate the same reports through the
stage-composition pipeline and compare bytes — any drift in resolution
order, tie-breaking, or formatting fails loudly.
"""

from pathlib import Path

import pytest

from repro.system.api import viprof_profile
from repro.system.experiment import run_case_study
from repro.workloads import by_name
from repro.xen import GuestSpec, MultiStackEngine

GOLDEN = Path(__file__).resolve().parents[1] / "fixtures" / "golden"


def golden(name: str) -> str:
    return (GOLDEN / name).read_text()


class TestGoldenParity:
    def test_viprof_report_matches_legacy_bytes(self):
        r = viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.1, seed=7
        )
        vr = r.viprof_report()
        s = vr.jit_stats
        text = vr.report.format_table(limit=15) + "\n"
        text += (
            f"{s.jit_samples} JIT samples, "
            f"{100 * s.resolution_rate:.1f}% resolved\n"
        )
        assert text == golden("report_fop.txt")

    def test_case_study_matches_legacy_bytes(self):
        cs = run_case_study(
            "fop", period=90_000, time_scale=0.08, seed=7, limit=12
        )
        assert cs.side_by_side() + "\n" == golden("case_study_fop.txt")

    def test_xen_reports_match_legacy_bytes(self):
        engine = MultiStackEngine(
            [GuestSpec(by_name("fop")), GuestSpec(by_name("ps"), weight=512)],
            period=30_000, time_scale=0.08, seed=7,
        )
        res = engine.run()
        text = res.unified_report().format_table() + "\n"
        text += "== dom0 ==\n" + res.domain_report(0).format_table() + "\n"
        text += "== dom1 ==\n" + res.domain_report(1).format_table() + "\n"
        assert text == golden("xen_unified.txt")


class TestBatchStreamEquivalence:
    """In-process cross-check: resolving one-by-one through ``resolve()``
    and aggregating by hand must equal the streaming ``generate()``."""

    @pytest.fixture(scope="class")
    def run(self):
        return viprof_profile(
            by_name("fop"), period=90_000, time_scale=0.12, seed=11
        )

    def test_reports_identical(self, run):
        vr = run.viprof_report()
        post = vr.post
        streamed = vr.report

        from repro.profiling.report import build_report

        batch = build_report(
            [post.resolve(s) for s in post.read_samples()],
            events=post.event_names(),
        )
        assert batch.events == streamed.events
        assert batch.totals == streamed.totals
        assert [
            (r.image, r.symbol, r.counts) for r in batch.sorted_rows()
        ] == [
            (r.image, r.symbol, r.counts) for r in streamed.sorted_rows()
        ]
        assert batch.format_table() == streamed.format_table()
