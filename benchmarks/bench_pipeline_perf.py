#!/usr/bin/env python
"""Throughput benchmark for the sample-resolution pipeline.

Synthesizes a large session (default one million samples) by replicating
a real seeded VIProf run's sample records, then measures end-to-end
resolution throughput (samples/sec) and peak RSS for:

* ``workers=1`` with the resolution cache **off** — the raw stage walk;
* ``workers=1`` with the cache **on** — memoization + batched decode;
* ``workers=2`` and ``workers=4`` — sharded multi-process resolution.

Every configuration's report is checked byte-identical against the
sequential baseline before its numbers are recorded (a perf run that
changes output is a failed run, not a fast one).  Results land in
``BENCH_pipeline.json`` at the repo root; ``docs/performance.md``
explains how to read them.

Usage::

    python benchmarks/bench_pipeline_perf.py            # 1M samples, 1/2/4
    python benchmarks/bench_pipeline_perf.py --smoke    # 100k, workers 1/2
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.bench import write_bench_payload  # noqa: E402
from repro.profiling.record_codec import (  # noqa: E402
    RecordFileReader,
    RecordFileWriter,
)
from repro.system.api import viprof_profile  # noqa: E402
from repro.viprof.postprocess import ViprofReport  # noqa: E402
from repro.workloads import by_name  # noqa: E402

SEED_BENCH = "fop"
SEED_PERIOD = 90_000
SEED_SCALE = 0.25
SEED = 7


def synthesize_session(sample_dir: Path, big_dir: Path, target: int) -> int:
    """Replicate a seed session's sample files into ``big_dir`` until the
    directory holds ~``target`` records, preserving the per-event mix and
    the record order within each replica (PC locality and all).

    Each seed file is bulk-encoded once (``pack_many``) and the packed
    blob is appended per replica, so synthesis cost is dominated by I/O
    rather than a million struct packs."""
    big_dir.mkdir(parents=True, exist_ok=True)
    seed_files = sorted(sample_dir.glob("*.samples"))
    seed_total = 0
    decoded = []
    for path in seed_files:
        with RecordFileReader(path) as reader:
            records = [r.sample for r in reader]
            decoded.append(
                (path.name, reader.codec, reader.event_name,
                 reader.period, records)
            )
            seed_total += len(records)
    if seed_total == 0:
        raise SystemExit(f"seed session {sample_dir} has no samples")
    replicas = max(1, -(-target // seed_total))  # ceil
    written = 0
    for name, codec, event, period, records in decoded:
        blob = codec.pack_many(records)
        with RecordFileWriter(big_dir / name, codec, event, period) as w:
            for _ in range(replicas):
                w.write_packed(blob, len(records))
                written += len(records)
    return written


def peak_rss_kb() -> int:
    """High-watermark RSS of this process plus all reaped children, in
    kB (Linux ``ru_maxrss`` units)."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return own + kids


def bench_config(
    make_post, workers: int, cache: bool, baseline_table: str | None
) -> tuple[dict, str]:
    post = make_post(cache)
    t0 = time.perf_counter()
    report = post.generate(workers=workers)
    elapsed = time.perf_counter() - t0
    stats = post.chain.stats_dict()
    total = stats["total_samples"]
    table = report.format_table(limit=20)
    result = {
        "workers": workers,
        "resolve_cache": cache,
        "samples": total,
        "seconds": round(elapsed, 4),
        "samples_per_sec": round(total / elapsed) if elapsed else None,
        "peak_rss_kb": peak_rss_kb(),
        "cache": stats["cache"],
        "matches_baseline": (
            None if baseline_table is None else table == baseline_table
        ),
    }
    if baseline_table is not None and table != baseline_table:
        raise SystemExit(
            f"workers={workers} cache={cache} produced a different report "
            "than the sequential baseline — parity broken, not measuring"
        )
    return result, table


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--samples", type=int, default=1_000_000,
                    help="synthetic session size (default 1M)")
    ap.add_argument("--workers", default="1,2,4",
                    help="comma-separated worker counts (default 1,2,4)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI mode: 100k samples, workers 1,2")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_pipeline.json")
    args = ap.parse_args(argv)
    if args.smoke:
        args.samples = min(args.samples, 100_000)
        args.workers = "1,2"
    worker_counts = [int(w) for w in args.workers.split(",")]

    print(f"seeding: viprof run of {SEED_BENCH!r} "
          f"(period={SEED_PERIOD}, scale={SEED_SCALE})", flush=True)
    run = viprof_profile(
        by_name(SEED_BENCH), period=SEED_PERIOD,
        time_scale=SEED_SCALE, seed=SEED,
    )
    seed_post = run.viprof_report().post

    with tempfile.TemporaryDirectory(prefix="viprof-bench-") as tmp:
        big_dir = Path(tmp) / "samples"
        t0 = time.perf_counter()
        written = synthesize_session(run.sample_dir, big_dir, args.samples)
        synth_secs = time.perf_counter() - t0
        print(f"synthesized {written} samples in {big_dir} "
              f"({synth_secs:.2f}s)", flush=True)

        def make_post(cache: bool) -> ViprofReport:
            return ViprofReport(
                kernel=seed_post.kernel,
                sample_dir=big_dir,
                codemaps=seed_post.codemaps,
                rvm_map=seed_post.rvm_map,
                registrations=seed_post.registrations,
                resolve_cache=cache,
            )

        configs = []
        baseline_table = None
        baseline_secs = None
        # The raw stage walk first, then the cached sequential pass (the
        # memoization + batched-decode win), then the sharded runs.
        plan = [(1, False)] + [(w, True) for w in worker_counts]
        for workers, cache in plan:
            result, table = bench_config(
                make_post, workers, cache, baseline_table
            )
            if baseline_table is None:
                baseline_table = table
            if workers == 1 and cache and baseline_secs is None:
                baseline_secs = result["seconds"]
            configs.append(result)
            rate = result["samples_per_sec"]
            print(f"workers={workers} cache={'on' if cache else 'off'}: "
                  f"{result['seconds']:.2f}s  {rate} samples/s", flush=True)

        uncached = next(
            c for c in configs if not c["resolve_cache"] and c["workers"] == 1
        )
        cached = next(
            (c for c in configs if c["resolve_cache"] and c["workers"] == 1),
            None,
        )
        payload = {
            "benchmark": "pipeline_resolution_throughput",
            "seed_run": {
                "workload": SEED_BENCH, "period": SEED_PERIOD,
                "time_scale": SEED_SCALE, "seed": SEED,
            },
            "samples": written,
            "smoke": args.smoke,
            "synthesis": {
                "seconds": round(synth_secs, 4),
                "samples_per_sec": (
                    round(written / synth_secs) if synth_secs else None
                ),
                "write_path": "pack_many+write_packed",
            },
            "configs": configs,
            "speedup_cache_on_vs_off": (
                round(uncached["seconds"] / cached["seconds"], 2)
                if cached and cached["seconds"]
                else None
            ),
        }

    # The shared writer stamps schema_version / cpu_count / python /
    # commit and embeds the bench summary for `viprof analyze`.
    write_bench_payload(args.out, payload)
    print(f"wrote {args.out}")
    if payload["speedup_cache_on_vs_off"] is not None:
        print(f"cache+batched-decode speedup: "
              f"{payload['speedup_cache_on_vs_off']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
