#!/usr/bin/env python
"""Throughput benchmark for the sample-resolution pipeline.

Synthesizes a large session (default one million samples) by replicating
a real seeded VIProf run's sample records, then measures end-to-end
resolution throughput (samples/sec) and peak RSS for:

* ``workers=1``, cache **off**, scalar loop — the raw per-sample walk;
* ``workers=1``, cache **off**, columnar — the deduplicated batch path
  against the raw walk (the headline columnar win);
* ``workers=1``, cache **on**, scalar and columnar;
* ``workers=2``/``4`` (columnar, cached) — sharded multi-process
  resolution over shared-memory result transport;
* ``workers="auto"`` — the core-count heuristic (1 on a single-core box).

Every configuration's report is checked byte-identical against the
sequential baseline before its numbers are recorded (a perf run that
changes output is a failed run, not a fast one), and each config carries
``speedup_vs_scalar`` — its time against the scalar loop at the same
cache setting.  Results land in ``BENCH_pipeline.json`` at the repo
root; ``docs/performance.md`` explains how to read them.

Usage::

    python benchmarks/bench_pipeline_perf.py            # 1M samples, 1/2/4
    python benchmarks/bench_pipeline_perf.py --smoke    # 100k, workers 1/2
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.bench import write_bench_payload  # noqa: E402
from repro.pipeline.parallel import resolve_workers  # noqa: E402
from repro.profiling.record_codec import (  # noqa: E402
    RecordFileReader,
    RecordFileWriter,
)
from repro.system.api import viprof_profile  # noqa: E402
from repro.viprof.postprocess import ViprofReport  # noqa: E402
from repro.workloads import by_name  # noqa: E402

SEED_BENCH = "fop"
SEED_PERIOD = 90_000
SEED_SCALE = 0.25
SEED = 7


def synthesize_session(sample_dir: Path, big_dir: Path, target: int) -> int:
    """Replicate a seed session's sample files into ``big_dir`` until the
    directory holds ~``target`` records, preserving the per-event mix and
    the record order within each replica (PC locality and all).

    Each seed file is bulk-encoded once (``pack_many``) and the packed
    blob is appended per replica, so synthesis cost is dominated by I/O
    rather than a million struct packs."""
    big_dir.mkdir(parents=True, exist_ok=True)
    seed_files = sorted(sample_dir.glob("*.samples"))
    seed_total = 0
    decoded = []
    for path in seed_files:
        with RecordFileReader(path) as reader:
            records = [r.sample for r in reader]
            decoded.append(
                (path.name, reader.codec, reader.event_name,
                 reader.period, records)
            )
            seed_total += len(records)
    if seed_total == 0:
        raise SystemExit(f"seed session {sample_dir} has no samples")
    replicas = max(1, -(-target // seed_total))  # ceil
    written = 0
    for name, codec, event, period, records in decoded:
        blob = codec.pack_many(records)
        with RecordFileWriter(big_dir / name, codec, event, period) as w:
            for _ in range(replicas):
                w.write_packed(blob, len(records))
                written += len(records)
    return written


def peak_rss_kb() -> int:
    """High-watermark RSS of this process plus all reaped children, in
    kB (Linux ``ru_maxrss`` units)."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return own + kids


def bench_config(
    make_post,
    workers: int | str,
    cache: bool,
    columnar: bool,
    baseline_table: str | None,
) -> tuple[dict, str]:
    resolved_workers = resolve_workers(workers)
    post = make_post(cache)
    t0 = time.perf_counter()
    report = post.generate(workers=workers, columnar=columnar)
    elapsed = time.perf_counter() - t0
    stats = post.chain.stats_dict()
    total = stats["total_samples"]
    table = report.format_table(limit=20)
    result = {
        "workers": resolved_workers,
        "resolve_cache": cache,
        "columnar": columnar,
        "samples": total,
        "seconds": round(elapsed, 4),
        "samples_per_sec": round(total / elapsed) if elapsed else None,
        "peak_rss_kb": peak_rss_kb(),
        "cache": stats["cache"],
        "matches_baseline": (
            None if baseline_table is None else table == baseline_table
        ),
    }
    if workers == "auto":
        result["workers_requested"] = "auto"
    if baseline_table is not None and table != baseline_table:
        raise SystemExit(
            f"workers={workers} cache={cache} columnar={columnar} produced "
            "a different report than the sequential baseline — parity "
            "broken, not measuring"
        )
    return result, table


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--samples", type=int, default=1_000_000,
                    help="synthetic session size (default 1M)")
    ap.add_argument("--workers", default=None,
                    help="comma-separated worker counts "
                         "(default 1,2,4; smoke default 1,2)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI mode: 100k samples, workers 1,2 unless "
                         "--workers is given explicitly")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_pipeline.json")
    args = ap.parse_args(argv)
    if args.smoke:
        args.samples = min(args.samples, 100_000)
    if args.workers is None:
        args.workers = "1,2" if args.smoke else "1,2,4"
    worker_counts = [int(w) for w in args.workers.split(",")]

    print(f"seeding: viprof run of {SEED_BENCH!r} "
          f"(period={SEED_PERIOD}, scale={SEED_SCALE})", flush=True)
    run = viprof_profile(
        by_name(SEED_BENCH), period=SEED_PERIOD,
        time_scale=SEED_SCALE, seed=SEED,
    )
    seed_post = run.viprof_report().post

    with tempfile.TemporaryDirectory(prefix="viprof-bench-") as tmp:
        big_dir = Path(tmp) / "samples"
        t0 = time.perf_counter()
        written = synthesize_session(run.sample_dir, big_dir, args.samples)
        synth_secs = time.perf_counter() - t0
        print(f"synthesized {written} samples in {big_dir} "
              f"({synth_secs:.2f}s)", flush=True)

        def make_post(cache: bool) -> ViprofReport:
            return ViprofReport(
                kernel=seed_post.kernel,
                sample_dir=big_dir,
                codemaps=seed_post.codemaps,
                rvm_map=seed_post.rvm_map,
                registrations=seed_post.registrations,
                resolve_cache=cache,
            )

        configs = []
        baseline_table = None
        # Scalar references first (they double as the report-parity
        # baseline), then the columnar sequential passes, then the
        # sharded columnar runs and the auto heuristic.
        plan: list[tuple[int | str, bool, bool]] = [
            (1, False, False),
            (1, False, True),
            (1, True, False),
            (1, True, True),
        ]
        plan += [(w, True, True) for w in worker_counts if w > 1]
        plan.append(("auto", True, True))
        scalar_secs: dict[bool, float] = {}
        for workers, cache, columnar in plan:
            result, table = bench_config(
                make_post, workers, cache, columnar, baseline_table
            )
            if baseline_table is None:
                baseline_table = table
            if workers == 1 and not columnar:
                scalar_secs[cache] = result["seconds"]
            ref = scalar_secs.get(cache)
            result["speedup_vs_scalar"] = (
                round(ref / result["seconds"], 2)
                if ref and result["seconds"]
                else None
            )
            configs.append(result)
            rate = result["samples_per_sec"]
            print(f"workers={workers} cache={'on' if cache else 'off'} "
                  f"columnar={'on' if columnar else 'off'}: "
                  f"{result['seconds']:.2f}s  {rate} samples/s", flush=True)

        def pick(workers, cache, columnar):
            return next(
                c for c in configs
                if c["workers"] == workers
                and c["resolve_cache"] is cache
                and c["columnar"] is columnar
                and "workers_requested" not in c
            )

        uncached_scalar = pick(1, False, False)
        uncached_columnar = pick(1, False, True)
        cached_scalar = pick(1, True, False)
        cached_columnar = pick(1, True, True)
        auto = next(c for c in configs if "workers_requested" in c)
        best_sharded = max(
            (c["samples_per_sec"] for c in configs
             if c["resolve_cache"] and c["columnar"]),
            default=None,
        )
        payload = {
            "benchmark": "pipeline_resolution_throughput",
            "seed_run": {
                "workload": SEED_BENCH, "period": SEED_PERIOD,
                "time_scale": SEED_SCALE, "seed": SEED,
            },
            "samples": written,
            "smoke": args.smoke,
            "synthesis": {
                "seconds": round(synth_secs, 4),
                "samples_per_sec": (
                    round(written / synth_secs) if synth_secs else None
                ),
                "write_path": "pack_many+write_packed",
            },
            "configs": configs,
            # Headlines: columnar vs the scalar loop at each cache
            # setting, memoization on the default (columnar) path, and
            # the worker heuristic's outcome on this box.
            "speedup_columnar_uncached": uncached_columnar[
                "speedup_vs_scalar"
            ],
            "speedup_columnar_cached": cached_columnar["speedup_vs_scalar"],
            "speedup_cache_on_vs_off": (
                round(
                    uncached_columnar["seconds"] / cached_columnar["seconds"],
                    2,
                )
                if cached_columnar["seconds"]
                else None
            ),
            "workers_auto_resolved": auto["workers"],
            # The auto heuristic never picks a losing pool, so the best
            # cached-columnar rate is ≥ the 1-worker rate by construction
            # (on single-core boxes it *is* the 1-worker rate).
            "best_samples_per_sec": best_sharded,
            "scalar_uncached_samples_per_sec": uncached_scalar[
                "samples_per_sec"
            ],
            "scalar_cached_samples_per_sec": cached_scalar[
                "samples_per_sec"
            ],
        }

    # The shared writer stamps schema_version / cpu_count / python /
    # commit and embeds the bench summary for `viprof analyze`.
    write_bench_payload(args.out, payload)
    print(f"wrote {args.out}")
    print(f"columnar speedup: uncached "
          f"{payload['speedup_columnar_uncached']}x, cached "
          f"{payload['speedup_columnar_cached']}x; cache on/off "
          f"{payload['speedup_cache_on_vs_off']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
