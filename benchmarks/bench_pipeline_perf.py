#!/usr/bin/env python
"""Throughput benchmark for the sample-resolution pipeline.

Synthesizes a large session (default one million samples) by replicating
a real seeded VIProf run's sample records, then measures end-to-end
resolution throughput (samples/sec) and peak RSS for:

* ``workers=1``, cache **off**, scalar loop — the raw per-sample walk;
* ``workers=1``, cache **off**, columnar — the deduplicated batch path
  against the raw walk (the headline columnar win);
* ``workers=1``, cache **on**, scalar and columnar;
* ``workers=2``/``4`` (columnar, cached) — sharded multi-process
  resolution over shared-memory result transport;
* ``workers="auto"`` — the core-count heuristic (1 on a single-core box);
* **cold start** (uncached, columnar, workers=1) with the code maps
  loaded *inside* the timed region, once from the text maps and once
  from the compiled arena (``repro.viprof.arena``) — the padded map set
  makes the parse-vs-mmap gap visible;
* **index load** — ``CodeMapIndex.load_dir`` alone, text vs arena,
  with the resident-memory delta of each load;
* **worker warm-up** — the sharded run re-executed with
  ``warm_top_k`` seeding, reporting the hit/miss shift (output parity
  enforced like everything else);
* **fleet scale-out** — a 16-guest multi-stack session amplified to the
  same order of magnitude, resolved once over the root stream
  (sequential layout) and once over the ``dom*/samples`` partition
  (sharded layout) at each worker count, reporting samples/sec for
  both.  Cross-layout parity is checked on canonical rows + totals
  (file visit order legitimately reorders tied table lines);
  within the sharded layout every worker count must reproduce the
  1-worker sharded report byte-for-byte.

Every configuration's report is checked byte-identical against the
sequential baseline before its numbers are recorded (a perf run that
changes output is a failed run, not a fast one), and each config carries
``speedup_vs_scalar`` — its time against the scalar loop at the same
cache setting.  Results land in ``BENCH_pipeline.json`` at the repo
root; ``docs/performance.md`` explains how to read them.

Usage::

    python benchmarks/bench_pipeline_perf.py            # 1M samples, 1/2/4
    python benchmarks/bench_pipeline_perf.py --smoke    # 100k, workers 1/2
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.bench import write_bench_payload  # noqa: E402
from repro.pipeline.parallel import resolve_workers  # noqa: E402
from repro.profiling.record_codec import (  # noqa: E402
    RecordFileReader,
    RecordFileWriter,
)
from repro.system.api import viprof_profile  # noqa: E402
from repro.viprof.arena import build_arena  # noqa: E402
from repro.viprof.codemap import (  # noqa: E402
    CodeMap,
    CodeMapIndex,
    CodeMapRecord,
    CodeMapWriter,
)
from repro.viprof.postprocess import ViprofReport  # noqa: E402
from repro.workloads import by_name  # noqa: E402

SEED_BENCH = "fop"
SEED_PERIOD = 90_000
SEED_SCALE = 0.25
SEED = 7

#: Fleet leg: guests multiplexed on one hypervisor, and the sampling
#: period of their shared buffer.  16 guests is the paper's scale-out
#: point; the short seed run is amplified (same replica trick as the
#: single-stack synthesis) so throughput is measured on six-figure
#: record counts, not the seed's hundreds.
FLEET_GUESTS = 16
FLEET_PERIOD = 5_000
FLEET_TARGET = 500_000
FLEET_TARGET_SMOKE = 100_000

#: Padding records appended per epoch to the synthesized map set.  Sized
#: so a text load parses a six-figure record count (a long JIT-heavy
#: session) while the padding sits far above every sampled PC, keeping
#: resolution byte-identical to the unpadded session.
PAD_RECORDS_PER_EPOCH = 20_000
PAD_RECORDS_SMOKE = 2_000
PAD_BASE = 0x9000_0000
PAD_STRIDE = 0x40


def synthesize_session(sample_dir: Path, big_dir: Path, target: int) -> int:
    """Replicate a seed session's sample files into ``big_dir`` until the
    directory holds ~``target`` records, preserving the per-event mix and
    the record order within each replica (PC locality and all).

    Each seed file is bulk-encoded once (``pack_many``) and the packed
    blob is appended per replica, so synthesis cost is dominated by I/O
    rather than a million struct packs."""
    big_dir.mkdir(parents=True, exist_ok=True)
    seed_files = sorted(sample_dir.glob("*.samples"))
    seed_total = 0
    decoded = []
    for path in seed_files:
        with RecordFileReader(path) as reader:
            records = [r.sample for r in reader]
            decoded.append(
                (path.name, reader.codec, reader.event_name,
                 reader.period, records)
            )
            seed_total += len(records)
    if seed_total == 0:
        raise SystemExit(f"seed session {sample_dir} has no samples")
    replicas = max(1, -(-target // seed_total))  # ceil
    written = 0
    for name, codec, event, period, records in decoded:
        blob = codec.pack_many(records)
        with RecordFileWriter(big_dir / name, codec, event, period) as w:
            for _ in range(replicas):
                w.write_packed(blob, len(records))
                written += len(records)
    return written


def synthesize_maps(
    seed_map_dir: Path, big_map_dir: Path, pad_per_epoch: int
) -> dict:
    """Clone the seed session's epoch maps with ``pad_per_epoch`` extra
    records per epoch at addresses far above every sampled PC.

    The padding inflates exactly the cost the arena removes — per-line
    text parsing and per-record object construction at load time —
    without changing a single resolution: no sample's PC falls inside
    the padded range, and the backward epoch-walk sees the same covering
    records it would in the unpadded session (parity-checked by the
    harness like every other config).
    """
    big_map_dir.mkdir(parents=True, exist_ok=True)
    writer = CodeMapWriter(big_map_dir)
    epochs = 0
    records = 0
    for path in sorted(seed_map_dir.glob("jit-map.*")):
        cm = CodeMap.load(path)
        pad_base = PAD_BASE + cm.epoch * pad_per_epoch * PAD_STRIDE
        padding = [
            CodeMapRecord(
                address=pad_base + i * PAD_STRIDE,
                size=PAD_STRIDE,
                tier="O0",
                name=f"pad.Epoch{cm.epoch}.m{i}",
            )
            for i in range(pad_per_epoch)
        ]
        writer.write(cm.epoch, list(cm.records) + padding)
        epochs += 1
        records += len(cm.records) + pad_per_epoch
    arena_path = build_arena(big_map_dir)
    return {
        "epochs": epochs,
        "records": records,
        "pad_per_epoch": pad_per_epoch,
        "arena_bytes": arena_path.stat().st_size if arena_path else 0,
    }


def amplify_fleet_session(session_dir: Path, target: int) -> int:
    """Replicate every sample file in a fleet session — the root stream
    *and* each ``dom<N>/samples`` shard — by one common factor until the
    root holds ~``target`` records.

    One factor everywhere keeps the fleet invariant intact: the
    per-domain files still exactly partition the root stream, so the
    sequential (root) and sharded (``dom*``) layouts keep resolving the
    same record multiset.  Returns the amplified root record count.
    """
    paths = sorted((session_dir / "samples").glob("*.samples"))
    paths += sorted(session_dir.glob("dom*/samples/*.samples"))
    decoded = []
    root_total = 0
    for path in paths:
        with RecordFileReader(path) as reader:
            records = list(reader)
            samples = [r.sample for r in records]
            dids = (
                [r.domain_id for r in records]
                if reader.codec.has_domain else None
            )
            decoded.append(
                (path, reader.codec, reader.event_name, reader.period,
                 samples, dids)
            )
            if path.parent.parent == session_dir:
                root_total += len(records)
    if root_total == 0:
        raise SystemExit(f"fleet session {session_dir} has no samples")
    replicas = max(1, -(-target // root_total))  # ceil
    for path, codec, event, period, samples, dids in decoded:
        blob = codec.pack_many(samples, dids)
        with RecordFileWriter(path, codec, event, period) as w:
            for _ in range(replicas):
                w.write_packed(blob, len(samples))
    return root_total * replicas


def _canonical_rows(report) -> list[tuple]:
    """Rows as a sorted multiset — file visit order feeds the
    aggregator's insertion order, which breaks ties in ``format_table``
    between the root and sharded layouts, so cross-layout parity is
    checked on canonical rows."""
    return sorted(
        (
            row.image,
            row.symbol,
            tuple((ev, row.count(ev)) for ev in sorted(report.events)),
        )
        for row in report.sorted_rows()
    )


def bench_fleet(worker_counts: list[int], target: int) -> dict:
    """The many-guest scale-out leg: one 16-guest fleet session,
    resolved over both layouts at each worker count."""
    from repro.workloads import fleet_workloads
    from repro.xen.fleet import run_fleet

    with tempfile.TemporaryDirectory(prefix="viprof-fleet-") as tmp:
        t0 = time.perf_counter()
        session = run_fleet(
            fleet_workloads(FLEET_GUESTS),
            period=FLEET_PERIOD,
            session_dir=Path(tmp) / "fleet",
            seed=SEED,
        )
        run_secs = time.perf_counter() - t0
        written = amplify_fleet_session(session.session_dir, target)
        print(f"fleet: {FLEET_GUESTS} guests, {written} samples "
              f"(run {run_secs:.2f}s)", flush=True)

        legs: list[dict] = []
        rows_ref = totals_ref = sharded_table = None
        for sharded in (False, True):
            for workers in ([1] if not sharded else worker_counts):
                t0 = time.perf_counter()
                report, chain = session.resolve(
                    workers=workers, sharded=sharded
                )
                elapsed = time.perf_counter() - t0
                total = chain.stats_dict()["total_samples"]
                if rows_ref is None:
                    rows_ref = _canonical_rows(report)
                    totals_ref = dict(report.totals)
                elif (
                    _canonical_rows(report) != rows_ref
                    or dict(report.totals) != totals_ref
                ):
                    raise SystemExit(
                        f"fleet workers={workers} sharded={sharded} "
                        "resolved different rows/totals than the "
                        "sequential root baseline — parity broken"
                    )
                if sharded:
                    table = report.format_table(limit=20)
                    if sharded_table is None:
                        sharded_table = table
                    elif table != sharded_table:
                        raise SystemExit(
                            f"fleet workers={workers} sharded report "
                            "diverged from the 1-worker sharded report "
                            "— parity broken"
                        )
                legs.append({
                    "layout": "sharded" if sharded else "sequential",
                    "workers": resolve_workers(workers),
                    "samples": total,
                    "seconds": round(elapsed, 4),
                    "samples_per_sec": (
                        round(total / elapsed) if elapsed else None
                    ),
                    "matches_baseline": True,
                })
                print(f"fleet layout="
                      f"{'sharded' if sharded else 'sequential'} "
                      f"workers={workers}: {elapsed:.2f}s  "
                      f"{legs[-1]['samples_per_sec']} samples/s",
                      flush=True)

    sequential = next(c for c in legs if c["layout"] == "sequential")
    best_sharded = min(
        (c for c in legs if c["layout"] == "sharded"),
        key=lambda c: c["seconds"],
    )
    return {
        "guests": FLEET_GUESTS,
        "period": FLEET_PERIOD,
        "samples": written,
        "run_seconds": round(run_secs, 4),
        "configs": legs,
        "sequential_samples_per_sec": sequential["samples_per_sec"],
        "sharded_samples_per_sec": best_sharded["samples_per_sec"],
        "speedup_sharded_vs_sequential": (
            round(sequential["seconds"] / best_sharded["seconds"], 2)
            if best_sharded["seconds"]
            else None
        ),
    }


def peak_rss_kb() -> int:
    """High-watermark RSS of this process plus all reaped children, in
    kB (Linux ``ru_maxrss`` units)."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return own + kids


def current_rss_kb() -> int | None:
    """Resident set size right now, in kB (Linux ``/proc``; None
    elsewhere).  Unlike :func:`peak_rss_kb` this can go *down*, so
    before/after deltas isolate one load's footprint even after an
    earlier config pushed the high watermark up."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def bench_index_load(map_dir: Path, repeats: int = 3) -> dict:
    """Time ``CodeMapIndex.load_dir`` text vs arena (best of
    ``repeats``), with each mode's resident-memory delta on first load."""
    import gc

    timings: dict[str, dict] = {}
    for mode, arena in (("text", False), ("arena", "require")):
        gc.collect()
        rss_before = current_rss_kb()
        best = None
        loaded_records = 0
        for i in range(repeats):
            t0 = time.perf_counter()
            idx = CodeMapIndex.load_dir(map_dir, arena=arena)
            elapsed = time.perf_counter() - t0
            if i == 0:
                # Record count on the text path; the arena path keeps
                # this lazy, which is the point — don't force it.
                loaded_records = sum(
                    len(idx.map_for(e)) for e in idx.epochs
                )
                rss_after = current_rss_kb()
            best = elapsed if best is None else min(best, elapsed)
            del idx
        timings[mode] = {
            "seconds": round(best, 4),
            "records": loaded_records,
            "rss_delta_kb": (
                rss_after - rss_before
                if rss_before is not None and rss_after is not None
                else None
            ),
        }
    text_s, arena_s = timings["text"]["seconds"], timings["arena"]["seconds"]
    return {
        "text": timings["text"],
        "arena": timings["arena"],
        "speedup": round(text_s / arena_s, 2) if arena_s else None,
    }


def bench_config(
    make_post,
    workers: int | str,
    cache: bool,
    columnar: bool,
    baseline_table: str | None,
) -> tuple[dict, str]:
    resolved_workers = resolve_workers(workers)
    post = make_post(cache)
    t0 = time.perf_counter()
    report = post.generate(workers=workers, columnar=columnar)
    elapsed = time.perf_counter() - t0
    stats = post.chain.stats_dict()
    total = stats["total_samples"]
    table = report.format_table(limit=20)
    result = {
        "workers": resolved_workers,
        "resolve_cache": cache,
        "columnar": columnar,
        "samples": total,
        "seconds": round(elapsed, 4),
        "samples_per_sec": round(total / elapsed) if elapsed else None,
        "peak_rss_kb": peak_rss_kb(),
        "cache": stats["cache"],
        "matches_baseline": (
            None if baseline_table is None else table == baseline_table
        ),
    }
    if workers == "auto":
        result["workers_requested"] = "auto"
    if baseline_table is not None and table != baseline_table:
        raise SystemExit(
            f"workers={workers} cache={cache} columnar={columnar} produced "
            "a different report than the sequential baseline — parity "
            "broken, not measuring"
        )
    return result, table


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--samples", type=int, default=1_000_000,
                    help="synthetic session size (default 1M)")
    ap.add_argument("--workers", default=None,
                    help="comma-separated worker counts "
                         "(default 1,2,4; smoke default 1,2)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI mode: 100k samples, workers 1,2 unless "
                         "--workers is given explicitly")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_pipeline.json")
    args = ap.parse_args(argv)
    if args.smoke:
        args.samples = min(args.samples, 100_000)
    if args.workers is None:
        args.workers = "1,2" if args.smoke else "1,2,4"
    worker_counts = [int(w) for w in args.workers.split(",")]

    print(f"seeding: viprof run of {SEED_BENCH!r} "
          f"(period={SEED_PERIOD}, scale={SEED_SCALE})", flush=True)
    run = viprof_profile(
        by_name(SEED_BENCH), period=SEED_PERIOD,
        time_scale=SEED_SCALE, seed=SEED,
    )
    seed_post = run.viprof_report().post

    with tempfile.TemporaryDirectory(prefix="viprof-bench-") as tmp:
        big_dir = Path(tmp) / "samples"
        t0 = time.perf_counter()
        written = synthesize_session(run.sample_dir, big_dir, args.samples)
        synth_secs = time.perf_counter() - t0
        print(f"synthesized {written} samples in {big_dir} "
              f"({synth_secs:.2f}s)", flush=True)

        big_map_dir = Path(tmp) / "jit-maps"
        pad = PAD_RECORDS_SMOKE if args.smoke else PAD_RECORDS_PER_EPOCH
        map_info = synthesize_maps(
            run.viprof_session.map_dir, big_map_dir, pad
        )
        print(f"synthesized {map_info['records']} map records over "
              f"{map_info['epochs']} epochs "
              f"(arena {map_info['arena_bytes']} bytes)", flush=True)

        def make_post(cache: bool) -> ViprofReport:
            return ViprofReport(
                kernel=seed_post.kernel,
                sample_dir=big_dir,
                codemaps=seed_post.codemaps,
                rvm_map=seed_post.rvm_map,
                registrations=seed_post.registrations,
                resolve_cache=cache,
            )

        configs = []
        baseline_table = None
        # Scalar references first (they double as the report-parity
        # baseline), then the columnar sequential passes, then the
        # sharded columnar runs and the auto heuristic.
        plan: list[tuple[int | str, bool, bool]] = [
            (1, False, False),
            (1, False, True),
            (1, True, False),
            (1, True, True),
        ]
        plan += [(w, True, True) for w in worker_counts if w > 1]
        plan.append(("auto", True, True))
        scalar_secs: dict[bool, float] = {}
        for workers, cache, columnar in plan:
            result, table = bench_config(
                make_post, workers, cache, columnar, baseline_table
            )
            if baseline_table is None:
                baseline_table = table
            if workers == 1 and not columnar:
                scalar_secs[cache] = result["seconds"]
            ref = scalar_secs.get(cache)
            result["speedup_vs_scalar"] = (
                round(ref / result["seconds"], 2)
                if ref and result["seconds"]
                else None
            )
            configs.append(result)
            rate = result["samples_per_sec"]
            print(f"workers={workers} cache={'on' if cache else 'off'} "
                  f"columnar={'on' if columnar else 'off'}: "
                  f"{result['seconds']:.2f}s  {rate} samples/s", flush=True)

        def pick(workers, cache, columnar):
            return next(
                c for c in configs
                if c["workers"] == workers
                and c["resolve_cache"] is cache
                and c["columnar"] is columnar
                and "workers_requested" not in c
            )

        # -- cold start: map load inside the timed region --------------
        # Same uncached single-core columnar resolve, but the cost of
        # getting the code maps into memory is *included* — the scenario
        # `viprof index` exists for.  Arena first, so the text parse
        # cannot inflate the arena leg's shared page cache... it can
        # only help it, and the arena still has to win.
        import gc

        cold_start: dict[str, dict] = {}
        for mode, arena_flag in (("arena", "require"), ("text", False)):
            gc.collect()
            rss0 = current_rss_kb()
            t0 = time.perf_counter()
            codemaps = CodeMapIndex.load_dir(big_map_dir, arena=arena_flag)
            load_secs = time.perf_counter() - t0
            post = ViprofReport(
                kernel=seed_post.kernel,
                sample_dir=big_dir,
                codemaps=codemaps,
                rvm_map=seed_post.rvm_map,
                registrations=seed_post.registrations,
                resolve_cache=False,
            )
            report = post.generate(workers=1, columnar=True)
            elapsed = time.perf_counter() - t0
            rss1 = current_rss_kb()
            table = report.format_table(limit=20)
            if table != baseline_table:
                raise SystemExit(
                    f"cold-start ({mode}) produced a different report "
                    "than the sequential baseline — parity broken"
                )
            total = post.chain.stats_dict()["total_samples"]
            cold_start[mode] = {
                "map_load_seconds": round(load_secs, 4),
                "seconds": round(elapsed, 4),
                "samples_per_sec": round(total / elapsed) if elapsed else None,
                "rss_delta_kb": (
                    rss1 - rss0
                    if rss0 is not None and rss1 is not None
                    else None
                ),
                "matches_baseline": True,
            }
            print(f"cold-start {mode}: load {load_secs:.3f}s, "
                  f"total {elapsed:.2f}s "
                  f"({cold_start[mode]['samples_per_sec']} samples/s)",
                  flush=True)
        cold_start["speedup_arena_vs_text"] = (
            round(
                cold_start["text"]["seconds"]
                / cold_start["arena"]["seconds"], 2,
            )
            if cold_start["arena"]["seconds"]
            else None
        )

        # -- index load alone ------------------------------------------
        index_load = bench_index_load(big_map_dir)
        print(f"index load: text {index_load['text']['seconds']}s, "
              f"arena {index_load['arena']['seconds']}s "
              f"({index_load['speedup']}x)", flush=True)

        # -- worker cache warm-up --------------------------------------
        warm_workers = next((w for w in worker_counts if w > 1), 2)
        warmup: dict[str, object] = {"workers": warm_workers}
        for label, warm_flag in (("cold", None), ("warm", True)):
            post = make_post(True)
            post.generate(workers=1)  # warm the parent chain first
            before = post.chain.stats_dict()["cache"]
            t0 = time.perf_counter()
            report = post.generate(
                workers=warm_workers, warm_top_k=warm_flag
            )
            elapsed = time.perf_counter() - t0
            after = post.chain.stats_dict()["cache"]
            if report.format_table(limit=20) != baseline_table:
                raise SystemExit(
                    f"warm-up ({label}) produced a different report than "
                    "the sequential baseline — parity broken"
                )
            warmup[label] = {
                "seconds": round(elapsed, 4),
                "samples_per_sec": (
                    round(written / elapsed) if elapsed else None
                ),
                "worker_hits": after["hits"] - before["hits"],
                "worker_misses": after["misses"] - before["misses"],
            }
        warmup["misses_avoided"] = (
            warmup["cold"]["worker_misses"] - warmup["warm"]["worker_misses"]
        )
        print(f"warm-up (workers={warm_workers}): cold misses "
              f"{warmup['cold']['worker_misses']}, warm misses "
              f"{warmup['warm']['worker_misses']}", flush=True)

        # -- fleet scale-out -------------------------------------------
        fleet = bench_fleet(
            worker_counts,
            FLEET_TARGET_SMOKE if args.smoke else FLEET_TARGET,
        )

        uncached_scalar = pick(1, False, False)
        uncached_columnar = pick(1, False, True)
        cached_scalar = pick(1, True, False)
        cached_columnar = pick(1, True, True)
        auto = next(c for c in configs if "workers_requested" in c)
        best_sharded = max(
            (c["samples_per_sec"] for c in configs
             if c["resolve_cache"] and c["columnar"]),
            default=None,
        )
        payload = {
            "benchmark": "pipeline_resolution_throughput",
            "seed_run": {
                "workload": SEED_BENCH, "period": SEED_PERIOD,
                "time_scale": SEED_SCALE, "seed": SEED,
            },
            "samples": written,
            "smoke": args.smoke,
            "synthesis": {
                "seconds": round(synth_secs, 4),
                "samples_per_sec": (
                    round(written / synth_secs) if synth_secs else None
                ),
                "write_path": "pack_many+write_packed",
            },
            "configs": configs,
            # Headlines: columnar vs the scalar loop at each cache
            # setting, memoization on the default (columnar) path, and
            # the worker heuristic's outcome on this box.
            "speedup_columnar_uncached": uncached_columnar[
                "speedup_vs_scalar"
            ],
            "speedup_columnar_cached": cached_columnar["speedup_vs_scalar"],
            "speedup_cache_on_vs_off": (
                round(
                    uncached_columnar["seconds"] / cached_columnar["seconds"],
                    2,
                )
                if cached_columnar["seconds"]
                else None
            ),
            "maps": map_info,
            "fleet": fleet,
            "cold_start": cold_start,
            "index_load": index_load,
            "warmup": warmup,
            # Arena headlines: cold-start resolution (map load included)
            # and the index load alone, arena vs text over the same
            # padded map set.
            "speedup_arena_cold_start": cold_start["speedup_arena_vs_text"],
            "speedup_arena_index_load": index_load["speedup"],
            "arena_cold_start_samples_per_sec": cold_start["arena"][
                "samples_per_sec"
            ],
            # Fleet headlines: the scale-out point (16 guests) over the
            # root stream vs the per-domain sharded partition.
            "fleet_sequential_samples_per_sec": fleet[
                "sequential_samples_per_sec"
            ],
            "fleet_sharded_samples_per_sec": fleet[
                "sharded_samples_per_sec"
            ],
            "workers_auto_resolved": auto["workers"],
            # The auto heuristic never picks a losing pool, so the best
            # cached-columnar rate is ≥ the 1-worker rate by construction
            # (on single-core boxes it *is* the 1-worker rate).
            "best_samples_per_sec": best_sharded,
            "scalar_uncached_samples_per_sec": uncached_scalar[
                "samples_per_sec"
            ],
            "scalar_cached_samples_per_sec": cached_scalar[
                "samples_per_sec"
            ],
        }

    # The shared writer stamps schema_version / cpu_count / python /
    # commit and embeds the bench summary for `viprof analyze`.
    write_bench_payload(args.out, payload)
    print(f"wrote {args.out}")
    print(f"columnar speedup: uncached "
          f"{payload['speedup_columnar_uncached']}x, cached "
          f"{payload['speedup_columnar_cached']}x; cache on/off "
          f"{payload['speedup_cache_on_vs_off']}x")
    print(f"arena speedup: cold start "
          f"{payload['speedup_arena_cold_start']}x, index load "
          f"{payload['speedup_arena_index_load']}x")
    print(f"fleet ({fleet['guests']} guests): sequential "
          f"{fleet['sequential_samples_per_sec']} samples/s, sharded "
          f"{fleet['sharded_samples_per_sec']} samples/s "
          f"({fleet['speedup_sharded_vs_sequential']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
