#!/usr/bin/env python
"""Throughput benchmark for the batched collection path.

Measures the three layers the batching rework touched, each against the
historical per-sample path it replaced, and checks **byte/state parity**
before recording any number (a perf run that changes output is a failed
run, not a fast one):

* **writer** — encoding+appending N distinct records per codec (core
  ``VPRS`` and domain-tagged ``XPRS``): per-record ``write`` with
  ``buffer_bytes=0`` (the exact pre-batching write pattern) vs chunked
  ``write_batch`` with the default 1 MiB high-water mark.  Output files
  are sha256-compared.
* **synthesis** — the benchmark-session synthesizer's job: replicating
  one decoded seed stream many times.  Per-record ``write`` loop vs
  ``pack_many`` once + ``write_packed`` per replica.  This is the
  headline number: encode cost is paid per distinct record run, not per
  written record.
* **daemon** — a full drain cycle over a synthetic machine (kernel /
  file-backed / anonymous / JIT-heap mix): ``batch=False`` sample-at-a-
  time drain vs the chunked ``classify_chunk`` + ``write_batch`` drain.
  Parity covers ``DaemonWork`` totals and per-symbol breakdown (including
  dict insertion order), every ``DaemonStats`` counter, and the sample
  files' bytes.

Results land in ``BENCH_collection.json`` at the repo root;
``docs/performance.md`` explains how to read them.

Usage::

    python benchmarks/bench_collection_perf.py           # 1M samples
    python benchmarks/bench_collection_perf.py --smoke   # 100k, CI
"""

from __future__ import annotations

import argparse
import hashlib
import resource
import sys
import tempfile
import time
from pathlib import Path
from random import Random

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.bench import write_bench_payload  # noqa: E402
from repro.oprofile.kmodule import OprofileKernelModule  # noqa: E402
from repro.oprofile.opcontrol import EventSpec, OprofileConfig  # noqa: E402
from repro.os.binary import standard_libraries  # noqa: E402
from repro.os.kernel import Kernel  # noqa: E402
from repro.os.loader import ProgramLoader  # noqa: E402
from repro.profiling.model import RawSample  # noqa: E402
from repro.profiling.record_codec import (  # noqa: E402
    CORE_CODEC,
    DOMAIN_CODEC,
    RecordFileWriter,
)
from repro.viprof.runtime_profiler import ViprofRuntimeProfiler  # noqa: E402

EVENT = "GLOBAL_POWER_EVENTS"
PERIOD = 90_000
SEED = 7
BATCH_RECORDS = 4096


def peak_rss_kb() -> int:
    """High-watermark RSS in kB (Linux ``ru_maxrss`` units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def synth_samples(n: int, rng: Random) -> list[RawSample]:
    """N distinct records with a realistic field mix."""
    return [
        RawSample(
            pc=rng.randrange(0x1000, 0xFFFF_FFFF),
            event_name=EVENT,
            task_id=rng.randrange(1, 64),
            kernel_mode=rng.random() < 0.1,
            cycle=i * PERIOD,
            epoch=rng.randrange(-1, 8),
        )
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# writer: per-record append vs chunked write_batch
# ---------------------------------------------------------------------------

def bench_writer(tmp: Path, samples: list[RawSample], codec) -> dict:
    tag = codec.magic.decode()
    domains = (
        [s.task_id % 4 for s in samples] if codec.has_domain else None
    )
    base_path = tmp / f"writer-{tag}-per_record.samples"
    t0 = time.perf_counter()
    with RecordFileWriter(base_path, codec, EVENT, PERIOD, buffer_bytes=0) as w:
        if codec.has_domain:
            for s, d in zip(samples, domains):
                w.write(s, domain_id=d)
        else:
            for s in samples:
                w.write(s)
    base_secs = time.perf_counter() - t0

    batch_path = tmp / f"writer-{tag}-batched.samples"
    t0 = time.perf_counter()
    with RecordFileWriter(batch_path, codec, EVENT, PERIOD) as w:
        for i in range(0, len(samples), BATCH_RECORDS):
            chunk = samples[i : i + BATCH_RECORDS]
            w.write_batch(
                chunk,
                domains[i : i + BATCH_RECORDS] if codec.has_domain else None,
            )
    batch_secs = time.perf_counter() - t0

    parity = sha256(base_path) == sha256(batch_path)
    if not parity:
        raise SystemExit(
            f"writer[{tag}]: batched file differs from per-record file "
            "— parity broken, not measuring"
        )
    n = len(samples)
    return {
        "codec": tag,
        "samples": n,
        "per_record_seconds": round(base_secs, 4),
        "per_record_samples_per_sec": round(n / base_secs),
        "batched_seconds": round(batch_secs, 4),
        "batched_samples_per_sec": round(n / batch_secs),
        "speedup": round(base_secs / batch_secs, 2),
        "bytes_identical": parity,
    }


# ---------------------------------------------------------------------------
# synthesis: replicating one seed stream (the benchmark synthesizers' job)
# ---------------------------------------------------------------------------

def bench_synthesis(tmp: Path, total: int, rng: Random) -> dict:
    seed = synth_samples(min(10_000, total), rng)
    replicas = max(1, -(-total // len(seed)))  # ceil
    n = replicas * len(seed)

    base_path = tmp / "synth-per_record.samples"
    t0 = time.perf_counter()
    with RecordFileWriter(
        base_path, CORE_CODEC, EVENT, PERIOD, buffer_bytes=0
    ) as w:
        for _ in range(replicas):
            for s in seed:
                w.write(s)
    base_secs = time.perf_counter() - t0

    batch_path = tmp / "synth-batched.samples"
    t0 = time.perf_counter()
    blob = CORE_CODEC.pack_many(seed)
    with RecordFileWriter(batch_path, CORE_CODEC, EVENT, PERIOD) as w:
        for _ in range(replicas):
            w.write_packed(blob, len(seed))
    batch_secs = time.perf_counter() - t0

    parity = sha256(base_path) == sha256(batch_path)
    if not parity:
        raise SystemExit(
            "synthesis: batched file differs from per-record file "
            "— parity broken, not measuring"
        )
    return {
        "samples": n,
        "replicas": replicas,
        "per_record_seconds": round(base_secs, 4),
        "per_record_samples_per_sec": round(n / base_secs),
        "batched_seconds": round(batch_secs, 4),
        "batched_samples_per_sec": round(n / batch_secs),
        "speedup": round(base_secs / batch_secs, 2),
        "bytes_identical": parity,
    }


# ---------------------------------------------------------------------------
# daemon: sample-at-a-time drain vs chunked classify+write
# ---------------------------------------------------------------------------

def build_daemon(out_dir: Path, capacity: int, batch: bool):
    cfg = OprofileConfig(
        events=(EventSpec(EVENT, PERIOD),), buffer_capacity=capacity
    )
    kernel = Kernel()
    proc = kernel.spawn("java")
    loader = ProgramLoader(proc.address_space)
    libc_vma = loader.load_library(standard_libraries()[0])
    heap_vma = loader.map_anonymous(0x200000)
    km = OprofileKernelModule(cfg)
    daemon = ViprofRuntimeProfiler(kernel, km, cfg, out_dir, batch=batch)
    jit_lo = heap_vma.start + 0x80000
    daemon.register_vm(proc.pid, (jit_lo, heap_vma.start + 0x180000))
    return kernel, proc, libc_vma, heap_vma, jit_lo, km, daemon


def daemon_samples(
    n: int, rng: Random, kernel, proc, libc_vma, heap_vma, jit_lo
) -> list[RawSample]:
    """A capture-ordered mix: kernel / file-backed / anonymous / JIT-heap."""
    kpc = kernel.kernel_pc("schedule")
    out = []
    for i in range(n):
        r = rng.random()
        if r < 0.15:
            pc, kmode = kpc, True
        elif r < 0.55:
            pc, kmode = libc_vma.start + rng.randrange(0x4000), False
        elif r < 0.75:
            pc, kmode = heap_vma.start + rng.randrange(0x40000), False
        else:
            pc, kmode = jit_lo + rng.randrange(0x10000), False
        out.append(
            RawSample(
                pc=pc, event_name=EVENT, task_id=proc.pid,
                kernel_mode=kmode, cycle=i * PERIOD,
            )
        )
    return out


def run_daemon(tmp: Path, samples: list[RawSample], batch: bool):
    out_dir = tmp / f"daemon-{'batched' if batch else 'per_record'}"
    _, _, _, _, _, km, daemon = build_daemon(
        out_dir, capacity=len(samples) + 1, batch=batch
    )
    km.buffer._samples = list(samples)
    km.buffer.total_captured = len(samples)
    daemon.start()
    t0 = time.perf_counter()
    work = daemon.wakeup()
    elapsed = time.perf_counter() - t0
    daemon.stop()
    return elapsed, work, daemon.stats, sha256(daemon.sample_file(EVENT))


def bench_daemon(tmp: Path, n: int, rng: Random) -> dict:
    scaffold = build_daemon(tmp / "daemon-scaffold", capacity=64, batch=True)
    kernel, proc, libc_vma, heap_vma, jit_lo, _, _ = scaffold
    samples = daemon_samples(
        n, rng, kernel, proc, libc_vma, heap_vma, jit_lo
    )
    base_secs, base_work, base_stats, base_hash = run_daemon(
        tmp, samples, batch=False
    )
    batch_secs, batch_work, batch_stats, batch_hash = run_daemon(
        tmp, samples, batch=True
    )
    work_parity = (
        base_work.total == batch_work.total
        and list(base_work.by_symbol.items())
        == list(batch_work.by_symbol.items())
    )
    stats_parity = base_stats == batch_stats
    bytes_parity = base_hash == batch_hash
    if not (work_parity and stats_parity and bytes_parity):
        raise SystemExit(
            f"daemon: batched drain diverged (work={work_parity} "
            f"stats={stats_parity} bytes={bytes_parity}) "
            "— parity broken, not measuring"
        )
    return {
        "samples": n,
        "category_mix": {
            "kernel": base_stats.kernel_samples,
            "file": base_stats.file_samples,
            "anon": base_stats.anon_samples,
            "jit": base_stats.jit_samples,
        },
        "per_record_seconds": round(base_secs, 4),
        "per_record_samples_per_sec": round(n / base_secs),
        "batched_seconds": round(batch_secs, 4),
        "batched_samples_per_sec": round(n / batch_secs),
        "speedup": round(base_secs / batch_secs, 2),
        "work_identical": work_parity,
        "stats_identical": stats_parity,
        "bytes_identical": bytes_parity,
    }


# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--samples", type=int, default=1_000_000,
                    help="records per section (default 1M)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI mode: 100k records")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_collection.json")
    args = ap.parse_args(argv)
    if args.smoke:
        args.samples = min(args.samples, 100_000)
    n = args.samples

    with tempfile.TemporaryDirectory(prefix="viprof-collect-") as tmp_s:
        tmp = Path(tmp_s)
        rng = Random(SEED)
        print(f"generating {n} synthetic records", flush=True)
        samples = synth_samples(n, rng)

        writers = []
        for codec in (CORE_CODEC, DOMAIN_CODEC):
            r = bench_writer(tmp, samples, codec)
            writers.append(r)
            print(f"writer[{r['codec']}]: {r['per_record_samples_per_sec']}"
                  f" -> {r['batched_samples_per_sec']} samples/s "
                  f"({r['speedup']}x)", flush=True)

        synthesis = bench_synthesis(tmp, n, rng)
        print(f"synthesis: {synthesis['per_record_samples_per_sec']}"
              f" -> {synthesis['batched_samples_per_sec']} samples/s "
              f"({synthesis['speedup']}x)", flush=True)

        daemon = bench_daemon(tmp, n, rng)
        print(f"daemon drain: {daemon['per_record_samples_per_sec']}"
              f" -> {daemon['batched_samples_per_sec']} samples/s "
              f"({daemon['speedup']}x)", flush=True)

    payload = {
        "benchmark": "collection_path_throughput",
        "samples": n,
        "smoke": args.smoke,
        "seed": SEED,
        "peak_rss_kb": peak_rss_kb(),
        "writers": writers,
        "synthesis": synthesis,
        "daemon": daemon,
        "headline_speedup_synthesis": synthesis["speedup"],
        "all_parity_checks_passed": True,  # SystemExit above otherwise
    }
    # The shared writer stamps schema_version / cpu_count / python /
    # commit and embeds the bench summary for `viprof analyze`.
    write_bench_payload(args.out, payload)
    print(f"wrote {args.out}")
    print(f"headline (synthesis) speedup: {synthesis['speedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
