"""Figure 2 — profiling overhead across the benchmark suite.

Paper artifact: normalized execution time (profiled / base) for every
benchmark under OProfile at the 90 K period and VIProf at 45 K / 90 K /
450 K, plus the suite average.

Paper's quantitative claims (§4.3), asserted as shape below:

* OProfile at 90 K slows the system ~5 % on average; VIProf is similar
  ("adds negligible overhead to what Oprofile already introduces");
* overhead grows as the sampling period shrinks (450 K < 90 K < 45 K);
* at 90 K most benchmarks stay under 10 % with antlr the outlier above;
* several benchmarks stay under 5 %;
* long-running benchmarks amortize better than short ones;
* a few runs beat OProfile (VIProf replaces the anonymous-logging path).
"""

from benchmarks.conftest import publish
from repro.system.experiment import run_overhead_matrix


def test_figure2_overhead_matrix(benchmark, results_dir, scale):
    matrix = benchmark.pedantic(
        lambda: run_overhead_matrix(time_scale=scale),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "figure2_overhead.txt", matrix.format_figure2())

    names = list(matrix.base_seconds)
    avg_o90 = matrix.average_slowdown("oprofile", 90_000)
    avg_v45 = matrix.average_slowdown("viprof", 45_000)
    avg_v90 = matrix.average_slowdown("viprof", 90_000)
    avg_v450 = matrix.average_slowdown("viprof", 450_000)

    # ~5 % average at the median period, for both profilers.
    assert 1.02 < avg_o90 < 1.09
    assert 1.02 < avg_v90 < 1.09
    assert abs(avg_v90 - avg_o90) < 0.02

    # Frequency ordering.
    assert avg_v450 < avg_v90 < avg_v45

    v90 = matrix.slowdowns("viprof", 90_000)
    # Most benchmarks < 10 %; antlr is the paper's >10 % outlier.
    assert sum(1 for s in v90.values() if s < 1.10) >= len(names) - 2
    assert v90["antlr"] == max(v90.values())
    # Several benchmarks < 5 %.
    assert sum(1 for s in v90.values() if s < 1.05) >= 3

    # Long runs amortize better than the short compile-heavy ones.
    assert v90["pseudojbb"] < v90["antlr"]
    assert v90["hsqldb"] < v90["antlr"]

    # At least one benchmark/config beats OProfile (anon-path avoidance).
    o90 = matrix.slowdowns("oprofile", 90_000)
    assert any(v90[n] < o90[n] for n in names)
