"""Figure 3 — base execution times.

Paper artifact: the table of unprofiled execution times in seconds
(pseudojbb 31, JVM98 5.74, antlr 8.7, bloat 28.5, fop 3.2, hsqldb 43,
pmd 16.3, xalan 22.2, ps — the OCR garbles the last rows; see
EXPERIMENTS.md for how we pinned them).

Our simulated clock is 1/1000 of the paper's 3.4 GHz, and budgets are set
from these very numbers, so the *measured* seconds land close to nominal —
the small excess over nominal is background/kernel activity, exactly as on
a real machine.
"""

import pytest

from benchmarks.conftest import publish
from repro.system.api import base_run
from repro.workloads.base import paper_suite

NOMINAL = {
    "pseudojbb": 31.0,
    "jvm98": 5.74,
    "antlr": 8.7,
    "bloat": 28.5,
    "fop": 3.2,
    "hsqldb": 43.0,
    "pmd": 16.3,
    "xalan": 22.2,
    "ps": 12.0,
}


def test_figure3_base_times(benchmark, results_dir, scale):
    def run_all():
        return {
            wl.name: base_run(wl, time_scale=scale) for wl in paper_suite()
        }

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'Benchmark':<12}{'Base time (s)':>14}{'Paper (s)':>12}"]
    for name, nominal in NOMINAL.items():
        measured = runs[name].seconds / scale
        lines.append(f"{name:<12}{measured:14.2f}{nominal:12.2f}")
    avg = sum(r.seconds / scale for r in runs.values()) / len(runs)
    lines.append(f"{'Average':<12}{avg:14.2f}{'':>12}")
    publish(results_dir, "figure3_base_times.txt", "\n".join(lines))

    for name, nominal in NOMINAL.items():
        measured = runs[name].seconds / scale
        # Within 10 % of nominal: budget + background/kernel share.
        assert measured == pytest.approx(nominal, rel=0.10), name
        assert measured >= nominal * 0.99  # never faster than the budget

    # Relative ordering preserved: hsqldb longest, fop shortest.
    seconds = {n: runs[n].seconds for n in NOMINAL}
    assert max(seconds, key=seconds.get) == "hsqldb"
    assert min(seconds, key=seconds.get) == "fop"
