"""Figure 1 — the DaCapo ``ps`` case study.

Paper artifact: side-by-side ``opreport``-style listings of the same run
under VIProf (top) and stock OProfile (bottom), two event columns
(GLOBAL_POWER_EVENTS time %, BSQ_CACHE_REFERENCE L2-miss %).

Expected shape (all asserted below):

* VIProf resolves ``RVM.map`` VM-internal methods and ``JIT.App``
  application methods by name — including the paper's
  ``...javaPostScript.red.scanner.Scanner.parseLine`` frame;
* OProfile shows the same execution as ``RVM.code.image (no symbols)``
  plus anonymous heap ranges;
* both agree on the native layer (``libc`` memset etc.).
"""

from benchmarks.conftest import publish
from repro.system.experiment import run_case_study


def test_figure1_case_study(benchmark, results_dir, scale):
    result = benchmark.pedantic(
        lambda: run_case_study("ps", period=90_000, time_scale=scale, limit=14),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "figure1_case_study.txt", result.side_by_side())

    v, o = result.viprof_table, result.oprofile_table

    # VIProf (top half of Figure 1): full vertical resolution.
    assert "RVM.map" in v
    assert "JIT.App" in v
    assert "edu.unm.cs.oal.dacapo.javaPostScript" in v
    assert "libc" in v + o

    # OProfile (bottom half): JIT and VM opaque.
    assert "RVM.code.image" in o
    assert "anon (range:0x" in o
    assert "(no symbols)" in o
    assert "JIT.App" not in o

    # VIProf's resolution is essentially lossless.
    stats = result.viprof_run.viprof_report().jit_stats
    assert stats.resolution_rate > 0.98
