"""Shared infrastructure for the figure-reproduction benchmarks.

Every experiment writes its table to ``benchmarks/results/`` (and prints
it, visible with ``pytest -s``), so a full ``pytest benchmarks/
--benchmark-only`` run leaves the paper-shaped artifacts on disk.

``REPRO_BENCH_SCALE`` (default ``1.0``) scales every run's cycle budget:
1.0 reproduces the paper's full run lengths (a couple of minutes total);
smaller values give quick smoke passes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def publish(results_dir: Path, name: str, table: str) -> None:
    """Write a result table to disk and echo it."""
    path = results_dir / name
    path.write_text(table + "\n", encoding="utf-8")
    print(f"\n--- {name} ---\n{table}\n")
