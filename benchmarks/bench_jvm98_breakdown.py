"""SPEC JVM98 per-program breakdown.

The paper reports JVM98 as a single averaged bar (Figure 2) and a single
averaged base time, 5.74 s (Figure 3).  Our per-program models are
constructed so the average of the seven programs' base times matches the
paper's figure; this bench runs each program individually — base time and
VIProf overhead at the median period — and checks the aggregate.
"""

import pytest

from benchmarks.conftest import publish
from repro.system.api import base_run, viprof_profile
from repro.workloads.specjvm98 import (
    compress, db, jack, javac, jess, mpegaudio, mtrt,
)

PROGRAMS = (compress, jess, db, javac, mpegaudio, mtrt, jack)


def test_jvm98_per_program(benchmark, results_dir, scale):
    def run_all():
        out = []
        for factory in PROGRAMS:
            base = base_run(factory(), time_scale=scale, noise=False)
            prof = viprof_profile(
                factory(), period=90_000, time_scale=scale, noise=False
            )
            out.append((factory().name, base, prof))
        return out

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'program':<11}{'base (s)':>10}{'viprof 90K':>12}"]
    base_times = []
    for name, base, prof in rows:
        seconds = base.seconds / scale
        base_times.append(seconds)
        lines.append(
            f"{name:<11}{seconds:>10.2f}{prof.slowdown_vs(base):>12.3f}"
        )
    avg = sum(base_times) / len(base_times)
    lines.append(f"{'Average':<11}{avg:>10.2f}")
    publish(results_dir, "jvm98_breakdown.txt", "\n".join(lines))

    # The seven programs' average base time reconstructs Figure 3's
    # "JVM98 (average) 5.74" row.
    assert avg == pytest.approx(5.74, rel=0.12)

    # Each program individually carries a moderate overhead.
    for name, base, prof in rows:
        s = prof.slowdown_vs(base)
        assert 1.0 < s < 1.12, name

    # compress/mpegaudio (tiny hot sets, low allocation) amortize better
    # than the compilation-heavy javac.
    by_name = {name: prof.slowdown_vs(base) for name, base, prof in rows}
    assert by_name["javac"] > min(by_name["compress"], by_name["mpegaudio"])
