"""Accuracy experiment (the quantitative reading of Figure 1).

Not a numbered artifact in the paper, but its implicit claim: the profile
VIProf produces is *correct* — JIT samples resolve to the right methods
despite compilation, recompilation and GC motion.  The simulator's
ground-truth ledger lets us measure that directly:

* resolution rate (fraction of JIT samples attributed to a method);
* share error of hot methods vs ground truth;
* the fraction stock OProfile leaves unattributed (its anonymous blob).
"""

from benchmarks.conftest import publish
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.profiling.model import Layer
from repro.system.api import oprofile_profile, viprof_profile
from repro.workloads import by_name

BENCHMARKS = ("ps", "fop", "pseudojbb")


def _accuracy_row(name: str, scale: float) -> dict:
    v = viprof_profile(by_name(name), period=90_000, time_scale=scale)
    o = oprofile_profile(by_name(name), period=90_000, time_scale=scale)
    vr = v.viprof_report()
    stats = vr.jit_stats

    # Mean |sampled - true| share over hot JIT methods (>1% true share).
    truth = v.ledger
    sampleable = truth.total_cycles - v.cpu_stats.nmi_handler_cycles
    errors = []
    for (image, symbol), entry in truth.top_symbols(40):
        if image != JIT_APP_IMAGE_LABEL:
            continue
        true_share = entry.cycles / sampleable
        if true_share < 0.01:
            continue
        row = vr.report.row_for(image, symbol)
        sampled = (
            vr.report.percent(row, "GLOBAL_POWER_EVENTS") / 100.0
            if row is not None
            else 0.0
        )
        errors.append(abs(sampled - true_share))

    orep = o.oprofile_report()
    anon_share = sum(
        orep.percent(r, "GLOBAL_POWER_EVENTS") / 100.0
        for r in orep.rows
        if r.image.startswith("anon (range:") or r.image == "RVM.code.image"
    )
    return {
        "name": name,
        "jit_samples": stats.jit_samples,
        "resolution": stats.resolution_rate,
        "own_epoch": stats.resolved_in_own_epoch,
        "earlier_epoch": stats.resolved_in_earlier_epoch,
        "mean_error": sum(errors) / len(errors) if errors else 0.0,
        "true_jit_share": truth.layer_share(Layer.APP_JIT),
        "oprofile_blind_share": anon_share,
    }


def test_accuracy_vs_ground_truth(benchmark, results_dir, scale):
    rows = benchmark.pedantic(
        lambda: [_accuracy_row(n, scale) for n in BENCHMARKS],
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'benchmark':<11}{'jit smpls':>10}{'resolved':>10}{'own-ep':>8}"
        f"{'earlier':>8}{'share err':>11}{'oprof blind':>12}"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<11}{r['jit_samples']:>10}"
            f"{r['resolution']:>10.4f}{r['own_epoch']:>8}"
            f"{r['earlier_epoch']:>8}{r['mean_error']:>11.4f}"
            f"{r['oprofile_blind_share']:>12.3f}"
        )
    publish(results_dir, "accuracy.txt", "\n".join(lines))

    for r in rows:
        assert r["resolution"] > 0.98, r["name"]
        assert r["mean_error"] < 0.02, r["name"]
        # Backward traversal is doing real work: some samples resolve only
        # through earlier epochs.
        assert r["earlier_epoch"] > 0, r["name"]
        # Stock OProfile leaves the whole VM+JIT share unattributed.
        assert r["oprofile_blind_share"] > r["true_jit_share"] * 0.8
