"""Micro-benchmarks of the hot substrate paths.

These are conventional pytest-benchmark timings (many rounds) of the inner
loops everything else stands on: cache simulation, counter accounting,
quantum execution, code-map resolution, and sample-file I/O.
"""

import numpy as np

from repro.hardware.cache import (
    CacheGeometry,
    SetAssociativeCache,
    StatisticalCacheModel,
)
from repro.hardware.counters import CounterBank, CounterConfig
from repro.hardware.cpu import CPU, Quantum
from repro.hardware.events import EventCounts, GLOBAL_POWER_EVENTS
from repro.hardware.memory import WorkingSet
from repro.profiling.model import RawSample
from repro.profiling.samplefile import SampleFileReader, SampleFileWriter
from repro.viprof.codemap import CodeMapIndex, CodeMapRecord, CodeMapWriter
from tests.conftest import make_tiny_workload


def test_cache_detailed_stream(benchmark):
    cache = SetAssociativeCache(CacheGeometry(64 * 1024, 64, 8))
    ws = WorkingSet(base=0, size=1 << 20, locality=0.7, seed=3)
    stream = ws.stream(2000)
    benchmark(cache.access_stream, stream)


def test_cache_statistical_model(benchmark):
    model = StatisticalCacheModel(CacheGeometry.paper_l2(), seed=3)
    ws = WorkingSet(base=0, size=1 << 24, locality=0.7, seed=3)
    benchmark(model.misses_for, ws, 2000)


def test_counter_bank_consume(benchmark):
    bank = CounterBank()
    bank.program(CounterConfig(event=GLOBAL_POWER_EVENTS, period=90_000))
    counts = EventCounts(cycles=2_000, instructions=1_500)

    def consume():
        bank.consume_all(counts, kernel_mode=False)

    benchmark(consume)


def test_cpu_quantum_execution(benchmark):
    cpu = CPU()
    cpu.counters.program(
        CounterConfig(event=GLOBAL_POWER_EVENTS, period=90_000)
    )
    cpu.nmi.register(lambda f: 1100)
    q = Quantum(
        pc_start=0x6080_0000, code_len=0x800,
        counts=EventCounts(cycles=2_000, instructions=1_500),
    )
    benchmark(cpu.execute, q)


def test_codemap_backward_resolution(benchmark, tmp_path):
    writer = CodeMapWriter(tmp_path)
    for epoch in range(60):
        writer.write(
            epoch,
            [
                CodeMapRecord(
                    address=0x6080_0000 + epoch * 0x10000 + i * 0x400,
                    size=0x400, tier="O1", name=f"m{epoch}_{i}",
                )
                for i in range(20)
            ],
        )
    idx = CodeMapIndex.load_dir(tmp_path)
    # Worst case: epoch-0 address queried from epoch 59.
    benchmark(idx.resolve, 59, 0x6080_0000 + 0x10)


def test_samplefile_write_throughput(benchmark, tmp_path):
    samples = [
        RawSample(
            pc=0x6080_0000 + i, event_name="GLOBAL_POWER_EVENTS",
            task_id=1000, kernel_mode=False, cycle=i, epoch=3,
        )
        for i in range(1000)
    ]
    counter = iter(range(10_000_000))

    def write_batch():
        path = tmp_path / f"b{next(counter)}.samples"
        with SampleFileWriter(path, "GLOBAL_POWER_EVENTS", 90_000) as w:
            for s in samples:
                w.write(s)

    benchmark(write_batch)


def test_samplefile_read_throughput(benchmark, tmp_path):
    path = tmp_path / "r.samples"
    with SampleFileWriter(path, "GLOBAL_POWER_EVENTS", 90_000) as w:
        for i in range(5000):
            w.write(
                RawSample(
                    pc=i, event_name="GLOBAL_POWER_EVENTS", task_id=1,
                    kernel_mode=False, cycle=i,
                )
            )
    benchmark(lambda: list(SampleFileReader(path)))


def test_tlb_access(benchmark):
    from repro.hardware.tlb import DirectMappedTlb

    tlb = DirectMappedTlb(entries=64)
    addrs = [(i * 0x1040) & 0xFFFFFF for i in range(512)]

    def touch_all():
        for a in addrs:
            tlb.access(a)

    benchmark(touch_all)


def test_report_aggregation(benchmark):
    from repro.profiling.model import RawSample, ResolvedSample
    from repro.profiling.report import build_report

    samples = [
        ResolvedSample(
            raw=RawSample(
                pc=i, event_name="GLOBAL_POWER_EVENTS", task_id=1,
                kernel_mode=False, cycle=i,
            ),
            image=f"img{i % 7}",
            symbol=f"sym{i % 97}",
        )
        for i in range(5000)
    ]
    benchmark(build_report, samples)


def test_profile_diff(benchmark):
    from repro.profiling.diff import diff_reports
    from repro.profiling.model import RawSample, ResolvedSample
    from repro.profiling.report import build_report

    def mk(shift):
        samples = [
            ResolvedSample(
                raw=RawSample(
                    pc=i, event_name="GLOBAL_POWER_EVENTS", task_id=1,
                    kernel_mode=False, cycle=i,
                ),
                image="JIT.App",
                symbol=f"m{(i + shift) % 200}",
            )
            for i in range(3000)
        ]
        return build_report(samples)

    before, after = mk(0), mk(37)
    benchmark(diff_reports, before, after)


def test_timeline_build(benchmark):
    from repro.analysis.timeline import build_timeline
    from repro.profiling.model import RawSample, ResolvedSample

    samples = [
        ResolvedSample(
            raw=RawSample(
                pc=i, event_name="GLOBAL_POWER_EVENTS", task_id=1,
                kernel_mode=False, cycle=i * 997,
            ),
            image="JIT.App",
            symbol=f"m{i % 50}",
        )
        for i in range(4000)
    ]
    benchmark(build_timeline, samples, 100_000)


def test_engine_simulation_rate(benchmark):
    """Cycles simulated per wall second for an unprofiled machine — the
    number that sets the cost of every experiment above."""
    from repro.system.api import base_run

    wl = make_tiny_workload(base_time_s=0.3)

    def run():
        return base_run(wl, noise=False).wall_cycles

    cycles = benchmark(run)
    assert cycles > 0
