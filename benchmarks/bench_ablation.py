"""Ablations of VIProf's design choices (DESIGN.md §5).

The paper argues for three runtime-side choices and one post-processing
choice; each ablation removes one and measures the cost/accuracy movement:

1. partial per-epoch code maps  vs  rewriting the full map every GC;
2. flag-don't-log in the GC move hook  vs  eager per-move logging;
3. heap-bounds JIT classification  vs  the stock anonymous path;
4. backward epoch traversal  vs  own-epoch-map-only resolution.
"""

from pathlib import Path

from benchmarks.conftest import publish
from repro.oprofile.opcontrol import OprofileConfig
from repro.profiling.model import Layer
from repro.system.api import base_run
from repro.system.engine import EngineConfig, ProfilerMode, SystemEngine
from repro.workloads import by_name

BENCH = "ps"
PERIOD = 45_000  # denser sampling accentuates the runtime-path ablations


def _run(scale, **flags):
    cfg = EngineConfig(
        mode=ProfilerMode.VIPROF,
        profile_config=OprofileConfig.paper_config(PERIOD),
        seed=7,
        time_scale=scale,
        noise=False,
        **flags,
    )
    return SystemEngine(by_name(BENCH), cfg).run()


def test_ablations(benchmark, results_dir, scale):
    def run_all():
        base = base_run(by_name(BENCH), time_scale=scale, noise=False)
        paper = _run(scale)
        full_maps = _run(scale, viprof_full_maps=True)
        eager = _run(scale, viprof_eager_move_log=True)
        anon = _run(scale, viprof_anon_path=True)
        return base, paper, full_maps, eager, anon

    base, paper, full_maps, eager, anon = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    def agent_cycles(r):
        return r.ledger.layer_cycles(Layer.AGENT)

    def daemon_cycles(r):
        return r.ledger.layer_cycles(Layer.DAEMON)

    bt_stats = paper.viprof_report(backward_traversal=True).jit_stats
    no_bt_stats = paper.viprof_report(backward_traversal=False).jit_stats

    lines = [
        f"{'variant':<26}{'slowdown':>10}{'agent cyc':>12}{'daemon cyc':>12}"
        f"{'map records':>13}",
    ]
    for label, r in (
        ("paper design", paper),
        ("full-map rewrite", full_maps),
        ("eager move logging", eager),
        ("anon path (no fast path)", anon),
    ):
        lines.append(
            f"{label:<26}{r.slowdown_vs(base):>10.4f}{agent_cycles(r):>12}"
            f"{daemon_cycles(r):>12}{r.agent_stats.records_written:>13}"
        )
    lines.append("")
    lines.append(
        f"resolution with backward traversal:    {bt_stats.resolution_rate:.4f}"
    )
    lines.append(
        f"resolution with own-epoch map only:    {no_bt_stats.resolution_rate:.4f}"
    )
    publish(results_dir, "ablation.txt", "\n".join(lines))

    # 1. Partial maps are the amortization win.
    assert full_maps.agent_stats.records_written > 2 * paper.agent_stats.records_written
    assert agent_cycles(full_maps) > agent_cycles(paper)

    # 2. Flagging beats eager logging in the GC path.
    assert agent_cycles(eager) > agent_cycles(paper)

    # 3. The bounds check beats the anonymous path in daemon time.
    assert daemon_cycles(anon) > daemon_cycles(paper)
    assert anon.daemon_stats.jit_samples == 0

    # 4. Backward traversal is required for full resolution.
    assert no_bt_stats.resolution_rate < bt_stats.resolution_rate
    assert bt_stats.resolution_rate > 0.98
