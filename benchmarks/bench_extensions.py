"""Benchmarks for the implemented future-work extensions (paper §5) and
the annotation capability.

* Multi-stack XenoProf profiling: two guest stacks under the hypervisor,
  domain-tagged samples, per-domain and unified resolution.
* Profile-guided optimization: VIProf profile → hot-set → direct-tier
  compilation → throughput gain at equal work budget.
* JIT annotation: bytecode-granularity histograms inside hot methods.
"""

from benchmarks.conftest import publish
from repro.pgo import run_pgo_experiment
from repro.workloads import by_name
from repro.xen import GuestSpec, MultiStackEngine


def test_multistack_xenoprof(benchmark, results_dir, scale):
    def run():
        engine = MultiStackEngine(
            [
                GuestSpec(by_name("fop")),
                GuestSpec(by_name("ps"), weight=512),
            ],
            period=45_000,
            time_scale=min(scale, 0.5),  # two full stacks; cap the cost
        )
        return engine.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"world switches: {result.hypervisor.world_switches}",
        f"samples: {len(result.buffer)} "
        f"(xen share {100 * result.xen_share():.2f}%)",
        f"per-domain: {dict(sorted(result.buffer.per_domain.items()))}",
        "",
        "=== unified cross-stack profile (top 12) ===",
        result.unified_report().format_table(limit=12),
    ]
    publish(results_dir, "extension_xenoprof.txt", "\n".join(lines))

    # Both domains sampled; both resolve their own JIT methods.
    assert set(result.buffer.per_domain) == {0, 1}
    for did in (0, 1):
        rep = result.domain_report(did)
        assert any(r.image == "JIT.App" for r in rep.rows), did
    # The weighted domain (ps, weight 512, larger budget) got more CPU.
    d = {g.domain.name: g.domain.cpu_cycles for g in result.guests.values()}
    assert d["ps"] > d["fop"]
    # The unified report separates the stacks.
    images = {r.image for r in result.unified_report().rows}
    assert any(i.startswith("dom0:") for i in images)
    assert any(i.startswith("dom1:") for i in images)


def test_profile_guided_optimization(benchmark, results_dir, scale):
    result = benchmark.pedantic(
        lambda: run_pgo_experiment(
            lambda: by_name("ps"), time_scale=min(scale, 0.5)
        ),
        rounds=1,
        iterations=1,
    )
    publish(
        results_dir,
        "extension_pgo.txt",
        result.format_summary()
        + f"\ncompilation events: {result.baseline_compilations} -> "
        f"{result.guided_compilations}",
    )
    assert result.hot_methods > 5
    assert result.throughput_gain > 1.03
    assert result.guided_compilations < result.baseline_compilations


def test_jit_annotation(benchmark, results_dir, scale):
    from repro.system.api import viprof_profile

    def run():
        r = viprof_profile(
            by_name("ps"), period=20_000, time_scale=min(scale, 0.5)
        )
        vr = r.viprof_report()
        hot = next(
            row for row in vr.report.sorted_rows() if row.image == "JIT.App"
        )
        return vr.post.annotate_jit(hot.symbol, bucket_bytes=64)

    ann = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "extension_annotation.txt", ann.format_table(limit=20))

    assert ann.rows, "no annotated buckets for the hottest JIT method"
    assert all(r.bytecode_index is not None for r in ann.rows)
    assert ann.unknown_offset_samples == 0
